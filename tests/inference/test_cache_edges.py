"""Edge-case tests for prediction-cache invalidation and accounting.

Covers the corners the main engine/cache suites skirt: a
``load_state_dict`` landing *between* two predictions of one stream, LRU
eviction ordering under capacity pressure (with the eviction counter),
the double version bump of a checkpoint restore, and the telemetry
bookkeeping identity ``hits + misses == lookups``.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.inference import InferenceEngine, PredictionCache
from repro.models import ModelConfig
from repro.models.tsb_rnn import TSBRNN
from repro.nn import BestWeightsCheckpoint
from repro.nn.training import predict_proba

VOCAB = 12
N_ATTRS = 3
MAX_LEN = 10
TINY = ModelConfig(char_embed_dim=6, value_units=5, num_layers=1,
                   attr_embed_dim=3, attr_units=3, length_dense_units=4,
                   head_units=4)


def _pool_features(rng, n_unique, n_rows):
    pool_lengths = rng.integers(1, MAX_LEN + 1, size=n_unique)
    pool_values = np.zeros((n_unique, MAX_LEN), dtype=np.int64)
    for i, ell in enumerate(pool_lengths):
        pool_values[i, :ell] = rng.integers(1, VOCAB, size=ell)
    pool_attrs = rng.integers(1, N_ATTRS + 1, size=n_unique)
    picks = rng.integers(0, n_unique, size=n_rows)
    features = {
        "values": pool_values[picks],
        "attributes": pool_attrs[picks],
        "length_norm": (pool_lengths[picks] / MAX_LEN).reshape(-1, 1),
    }
    return features, pool_lengths[picks].astype(np.int64)


@pytest.fixture()
def model():
    m = TSBRNN(VOCAB, TINY, np.random.default_rng(1))
    m.eval()
    return m


def _probs(x):
    return np.array([x, 1 - x])


class TestLoadStateDictMidStream:
    def test_reload_between_calls_flushes_and_stays_correct(self, model):
        """A weights reload between two predictions of one serving stream
        must flush the cache exactly once and keep outputs naive-exact."""
        rng = np.random.default_rng(7)
        features, lengths = _pool_features(rng, 5, 20)
        cache = PredictionCache()
        engine = InferenceEngine(model, cache=cache, batch_size=6)

        engine.predict_proba(features, lengths=lengths)          # warm
        warm = engine.predict_proba(features, lengths=lengths)
        assert engine.last_stats.cache_hits == engine.last_stats.n_unique

        model.load_state_dict(model.state_dict())                # mid-stream
        reloaded = engine.predict_proba(features, lengths=lengths)
        assert cache.invalidations == 1
        # Same weights were reloaded, so values match; but nothing may
        # have been served from the (stale-versioned) cache.
        assert engine.last_stats.cache_hits == 0
        assert engine.last_stats.cache_misses == engine.last_stats.n_unique
        np.testing.assert_array_equal(warm, reloaded)
        np.testing.assert_array_equal(
            reloaded, predict_proba(model, features, deduplicate=False))

    def test_version_survives_across_multiple_reloads(self, model):
        versions = [model.weights_version]
        for _ in range(3):
            model.load_state_dict(model.state_dict())
            versions.append(model.weights_version)
        assert versions == sorted(set(versions))  # strictly increasing


class TestEvictionOrdering:
    def test_lru_evicts_in_recency_order_and_counts(self):
        cache = PredictionCache(capacity=2)
        cache.sync_version(0)
        cache.put(b"a", _probs(0.1))
        cache.put(b"b", _probs(0.2))
        cache.get(b"a")                      # a is now most recent
        cache.put(b"c", _probs(0.3))         # evicts b (the LRU entry)
        assert cache.evictions == 1
        assert cache.get(b"b") is None
        cache.put(b"d", _probs(0.4))         # now a is LRU -> evicted
        assert cache.evictions == 2
        assert cache.get(b"c") is not None
        assert cache.get(b"d") is not None
        assert cache.get(b"a") is None

    def test_resize_shrink_counts_evictions(self):
        cache = PredictionCache(capacity=4)
        cache.sync_version(0)
        for key in (b"a", b"b", b"c", b"d"):
            cache.put(key, _probs(0.5))
        cache.resize(1)
        assert cache.evictions == 3
        assert len(cache) == 1
        assert cache.get(b"d") is not None   # the most recent survived
        assert cache.stats()["evictions"] == 3

    def test_flushes_do_not_count_as_evictions(self):
        cache = PredictionCache(capacity=4)
        cache.sync_version(0)
        cache.put(b"a", _probs(0.5))
        cache.sync_version(1)                # flush, not eviction
        cache.invalidate()
        assert cache.evictions == 0
        assert cache.invalidations == 2

    def test_engine_under_capacity_pressure_stays_exact(self, model):
        """A cache smaller than the unique-cell count thrashes but never
        corrupts results."""
        rng = np.random.default_rng(3)
        features, lengths = _pool_features(rng, 8, 24)
        engine = InferenceEngine(model, cache=PredictionCache(capacity=2),
                                 batch_size=5)
        naive = predict_proba(model, features, deduplicate=False)
        for _ in range(3):
            got = engine.predict_proba(features, lengths=lengths)
            np.testing.assert_array_equal(naive, got)
        assert engine.cache.evictions > 0


class TestCheckpointRestoreVersioning:
    def test_restore_bumps_version_twice(self, model):
        """``restore`` goes through ``load_state_dict`` (one bump) and
        marks weights updated explicitly (second bump): belt and braces,
        and the cache keys only care that the version moved."""
        checkpoint = BestWeightsCheckpoint()
        checkpoint.on_epoch_end(model, 0, {"loss": 1.0})
        version = model.weights_version
        checkpoint.restore(model)
        assert model.weights_version == version + 2

    def test_restore_invalidates_warm_cache(self, model):
        rng = np.random.default_rng(9)
        features, lengths = _pool_features(rng, 4, 12)
        cache = PredictionCache()
        engine = InferenceEngine(model, cache=cache, batch_size=6)
        checkpoint = BestWeightsCheckpoint()
        checkpoint.on_epoch_end(model, 0, {"loss": 1.0})
        engine.predict_proba(features, lengths=lengths)
        assert len(cache) > 0
        checkpoint.restore(model)
        engine.predict_proba(features, lengths=lengths)
        assert cache.invalidations == 1
        assert engine.last_stats.cache_hits == 0


class TestTelemetryAccounting:
    def test_hits_plus_misses_equals_lookups(self, model):
        rng = np.random.default_rng(5)
        features, lengths = _pool_features(rng, 6, 18)
        registry = telemetry.MetricsRegistry()
        with telemetry.use_telemetry(registry):
            engine = InferenceEngine(model, cache=PredictionCache(),
                                     batch_size=6)
            engine.predict_proba(features, lengths=lengths)   # all misses
            engine.predict_proba(features, lengths=lengths)   # all hits
        counters = registry.snapshot()["counters"]
        assert counters["cache.lookups"] == \
            counters["cache.hits"] + counters["cache.misses"]
        assert counters["cache.lookups"] == 2 * engine.last_stats.n_unique
        # The registry view agrees with the cache's own accounting.
        assert counters["cache.hits"] == engine.cache.hits
        assert counters["cache.misses"] == engine.cache.misses
        # And with the engine's per-call stats, summed across both calls.
        totals = engine.total_stats
        assert counters["cache.hits"] == totals.cache_hits
        assert counters["cache.misses"] == totals.cache_misses

    def test_eviction_counter_matches_cache_attribute(self, model):
        rng = np.random.default_rng(6)
        features, lengths = _pool_features(rng, 8, 16)
        registry = telemetry.MetricsRegistry()
        with telemetry.use_telemetry(registry):
            engine = InferenceEngine(model, cache=PredictionCache(capacity=2),
                                     batch_size=4)
            engine.predict_proba(features, lengths=lengths)
        counters = registry.snapshot()["counters"]
        assert engine.cache.evictions > 0
        assert counters["cache.evictions"] == engine.cache.evictions
