"""Chunk off-by-tail sweep: every batch size from 1 to n, both paths.

With ``n = 7`` rows, sweeping ``batch_size`` over ``1..7`` exercises
every remainder shape a chunked loop can produce -- full chunks, a 1-row
tail (the duplicate-padded BLAS edge), a tail of every other size, and
the single-chunk case -- on both the naive chunked forward and the
dedup-memoized engine.  All of them must return the same bytes.
"""

import numpy as np
import pytest

from repro.inference import InferenceEngine, PredictionCache
from repro.models import ModelConfig
from repro.models.etsb_rnn import ETSBRNN
from repro.nn.training import predict_proba

VOCAB = 12
N_ATTRS = 3
MAX_LEN = 10
N_ROWS = 7
TINY = ModelConfig(char_embed_dim=6, value_units=5, num_layers=1,
                   attr_embed_dim=3, attr_units=3, length_dense_units=4,
                   head_units=4)


@pytest.fixture(scope="module")
def model():
    m = ETSBRNN(VOCAB, N_ATTRS + 1, TINY, np.random.default_rng(3))
    m.eval()
    return m


def _distinct_features(rng, n_rows):
    """n distinct cells (no duplicates), ragged lengths."""
    lengths = rng.integers(1, MAX_LEN + 1, size=n_rows)
    values = np.zeros((n_rows, MAX_LEN), dtype=np.int64)
    for i, ell in enumerate(lengths):
        values[i, :ell] = rng.integers(1, VOCAB, size=ell)
    values[:, 0] = np.arange(1, n_rows + 1) % (VOCAB - 1) + 1  # force distinct
    features = {
        "values": values,
        "attributes": rng.integers(1, N_ATTRS + 1, size=n_rows),
        "length_norm": (lengths / MAX_LEN).reshape(-1, 1),
    }
    return features, lengths.astype(np.int64)


@pytest.fixture(scope="module")
def dataset(model):
    rng = np.random.default_rng(17)
    features, lengths = _distinct_features(rng, N_ROWS)
    reference = predict_proba(model, features, batch_size=N_ROWS,
                              deduplicate=False)
    return features, lengths, reference


class TestChunkSweep:
    @pytest.mark.parametrize("batch_size", range(1, N_ROWS + 1))
    def test_naive_path_any_chunk_size(self, model, dataset, batch_size):
        features, _, reference = dataset
        got = predict_proba(model, features, batch_size=batch_size,
                            deduplicate=False)
        assert got.tobytes() == reference.tobytes()

    @pytest.mark.parametrize("batch_size", range(1, N_ROWS + 1))
    @pytest.mark.parametrize("with_cache", [False, True],
                             ids=["nocache", "cache"])
    def test_dedup_path_any_chunk_size(self, model, dataset, batch_size,
                                       with_cache):
        features, lengths, reference = dataset
        engine = InferenceEngine(
            model, cache=PredictionCache() if with_cache else None,
            batch_size=batch_size)
        cold = engine.predict_proba(features, lengths=lengths)
        assert cold.tobytes() == reference.tobytes()
        # Tail accounting: every row was evaluated exactly once.
        assert engine.last_stats.n_evaluated == N_ROWS
        if with_cache:
            warm = engine.predict_proba(features, lengths=lengths)
            assert warm.tobytes() == reference.tobytes()
            assert engine.last_stats.cache_hits == N_ROWS
            assert engine.last_stats.n_evaluated == 0

    @pytest.mark.parametrize("batch_size", range(1, N_ROWS + 1))
    def test_dedup_without_lengths_any_chunk_size(self, model, dataset,
                                                  batch_size):
        """No length hints -> no sorted-by-length reordering; the scatter
        must still restore row order for every remainder shape."""
        features, _, reference = dataset
        engine = InferenceEngine(model, cache=None, batch_size=batch_size)
        got = engine.predict_proba(features)
        assert got.tobytes() == reference.tobytes()
