"""Tests for the unique-cell index (DedupIndex / build_dedup_index)."""

import numpy as np
import pytest

from repro.dataprep import encode_cells, prepare, split_by_tuple_ids
from repro.errors import ConfigurationError
from repro.inference import DedupIndex, build_dedup_index
from repro.table import Table


def _features(values, attributes):
    return {
        "values": np.asarray(values, dtype=np.int64),
        "attributes": np.asarray(attributes, dtype=np.int64),
    }


class TestBuildDedupIndex:
    def test_groups_byte_identical_rows(self):
        feats = _features([[1, 2, 0], [3, 4, 5], [1, 2, 0], [1, 2, 0]],
                          [0, 1, 0, 0])
        idx = build_dedup_index(feats)
        assert idx.n_rows == 4
        assert idx.n_unique == 2
        np.testing.assert_array_equal(idx.inverse[[0, 2, 3]],
                                      [idx.inverse[0]] * 3)

    def test_representatives_are_first_occurrences(self):
        feats = _features([[9], [1], [9], [1], [5]], [0, 0, 0, 0, 0])
        idx = build_dedup_index(feats)
        # Every group's representative is the first row of that group.
        for group in range(idx.n_unique):
            members = np.where(idx.inverse == group)[0]
            assert idx.representatives[group] == members.min()

    def test_scatter_reconstructs_rows(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 3, size=(40, 5))
        attrs = rng.integers(0, 2, size=40)
        feats = _features(values, attrs)
        idx = build_dedup_index(feats)
        for name, arr in feats.items():
            np.testing.assert_array_equal(idx.scatter(arr[idx.representatives]),
                                          arr)

    def test_same_value_different_attribute_not_grouped(self):
        feats = _features([[1, 2], [1, 2]], [0, 1])
        assert build_dedup_index(feats).n_unique == 2

    def test_all_unique(self):
        feats = _features([[1], [2], [3]], [0, 0, 0])
        idx = build_dedup_index(feats)
        assert idx.n_unique == 3
        assert idx.unique_ratio == 1.0

    def test_mixed_dtypes_included(self):
        # float features participate in the key byte-for-byte
        feats = {
            "values": np.array([[1], [1], [1]], dtype=np.int64),
            "length_norm": np.array([[0.5], [0.5], [0.25]]),
        }
        assert build_dedup_index(feats).n_unique == 2

    def test_empty_features_rejected(self):
        with pytest.raises(ConfigurationError):
            build_dedup_index({})

    def test_misaligned_features_rejected(self):
        with pytest.raises(ConfigurationError, match="disagree"):
            build_dedup_index({"a": np.zeros(3), "b": np.zeros(4)})


class TestSubset:
    def test_subset_preserves_groups(self):
        feats = _features([[1], [2], [1], [3], [2], [1]], [0] * 6)
        idx = build_dedup_index(feats)
        indices = np.array([1, 2, 4, 5])
        sub = idx.subset(indices)
        assert sub.n_rows == 4
        # rows 2 and 5 (value 1) share a group; 1 and 4 (value 2) share one
        assert sub.inverse[1] == sub.inverse[3]
        assert sub.inverse[0] == sub.inverse[2]
        assert sub.inverse[0] != sub.inverse[1]

    def test_subset_representatives_are_first_in_subset(self):
        feats = _features([[1], [1], [2], [2]], [0] * 4)
        idx = build_dedup_index(feats)
        sub = idx.subset(np.array([3, 1, 0, 2]))
        for group in range(sub.n_unique):
            members = np.where(sub.inverse == group)[0]
            assert sub.representatives[group] == members.min()

    def test_subset_matches_rebuild(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 2, size=(60, 4))
        feats = _features(values, np.zeros(60, dtype=np.int64))
        idx = build_dedup_index(feats)
        indices = rng.permutation(60)[:25]
        sub = idx.subset(indices)
        rebuilt = build_dedup_index(
            {k: v[indices] for k, v in feats.items()})
        # Group partitions agree even if group numbering differs.
        np.testing.assert_array_equal(
            sub.inverse == sub.inverse[:, None],
            rebuilt.inverse == rebuilt.inverse[:, None])


class TestLengthOrder:
    def test_sorts_representatives_by_length(self):
        feats = _features([[1, 1, 1], [2, 0, 0], [1, 1, 1]], [0] * 3)
        idx = build_dedup_index(feats)
        lengths = np.array([3, 1, 3])
        order = idx.length_order(lengths)
        rep_lengths = lengths[idx.representatives][order]
        assert (np.diff(rep_lengths) >= 0).all()

    def test_memoised_per_array(self):
        feats = _features([[1], [2]], [0, 0])
        idx = build_dedup_index(feats)
        lengths = np.array([2, 1])
        first = idx.length_order(lengths)
        assert idx.length_order(lengths) is first  # same array -> cached
        other = idx.length_order(np.array([1, 2]))
        assert other is not first


class TestEncodedCellsIntegration:
    @pytest.fixture
    def duplicated_pair(self):
        dirty = Table({
            "A": ["x", "y", "x", "y", "x", "z"],
            "B": ["1", "1", "1", "2", "2", "2"],
        })
        return dirty, dirty

    def test_encode_cells_carries_dedup(self, duplicated_pair):
        prepared = prepare(*duplicated_pair)
        encoded = encode_cells(prepared)
        assert isinstance(encoded.dedup, DedupIndex)
        assert encoded.dedup.n_rows == encoded.n_cells
        # A: 3 unique values (x, y, z); B: 2 unique values (1, 2)
        assert encoded.dedup.n_unique == 5

    def test_dedup_groups_match_attribute_value_pairs(self, duplicated_pair):
        prepared = prepare(*duplicated_pair)
        encoded = encode_cells(prepared)
        pairs = list(zip(encoded.attribute_names,
                         (prepared.df.column("value_x").values)))
        groups = {}
        for i, pair in enumerate(pairs):
            groups.setdefault(pair, []).append(i)
        for members in groups.values():
            assert len(set(encoded.dedup.inverse[members])) == 1

    def test_split_sides_carry_dedup(self, duplicated_pair):
        prepared = prepare(*duplicated_pair)
        split = split_by_tuple_ids(prepared, [0, 1])
        assert split.train.dedup is not None
        assert split.test.dedup is not None
        assert split.test.dedup.n_rows == split.test.n_cells
        # subset dedup equals an index rebuilt from the subset features
        rebuilt = build_dedup_index(split.test.features)
        np.testing.assert_array_equal(
            split.test.dedup.inverse == split.test.dedup.inverse[:, None],
            rebuilt.inverse == rebuilt.inverse[:, None])
