"""Engine correctness: memoized == cached == naive, bit for bit.

The core guarantee of the dedup-memoized inference engine is that it is
a pure performance optimisation: under any duplicate structure, with or
without the cross-call cache, with warm or cold cache, its probabilities
are byte-identical to the naive chunked forward.  A hypothesis property
hammers that over random duplicate structures, and invalidation tests
prove that a single optimizer step or checkpoint restore flushes stale
entries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataprep import encode_cells, prepare
from repro.datasets import DATASET_NAMES, load
from repro.inference import InferenceEngine, PredictionCache
from repro.models import ModelConfig
from repro.models.etsb_rnn import ETSBRNN
from repro.models.tsb_rnn import TSBRNN
from repro.nn import BestWeightsCheckpoint, RMSprop, Trainer
from repro.nn.training import predict_proba

VOCAB = 12
N_ATTRS = 3
MAX_LEN = 10
TINY = ModelConfig(char_embed_dim=6, value_units=5, num_layers=1,
                   attr_embed_dim=3, attr_units=3, length_dense_units=4,
                   head_units=4)


@pytest.fixture(scope="module")
def model():
    m = ETSBRNN(VOCAB, N_ATTRS + 1, TINY, np.random.default_rng(3))
    m.eval()
    return m


def _pool_features(rng, n_unique, n_rows):
    """Features with a controlled duplicate structure: rows drawn from a
    pool of ``n_unique`` distinct cells."""
    pool_lengths = rng.integers(1, MAX_LEN + 1, size=n_unique)
    pool_values = np.zeros((n_unique, MAX_LEN), dtype=np.int64)
    for i, ell in enumerate(pool_lengths):
        pool_values[i, :ell] = rng.integers(1, VOCAB, size=ell)
    pool_attrs = rng.integers(1, N_ATTRS + 1, size=n_unique)
    picks = rng.integers(0, n_unique, size=n_rows)
    features = {
        "values": pool_values[picks],
        "attributes": pool_attrs[picks],
        "length_norm": (pool_lengths[picks] / MAX_LEN).reshape(-1, 1),
    }
    return features, pool_lengths[picks].astype(np.int64)


@pytest.mark.equivalence
class TestBitIdentity:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000),
           n_unique=st.integers(1, 8),
           n_rows=st.integers(1, 40),
           use_lengths=st.booleans())
    def test_memoized_and_cached_match_naive(self, model, seed, n_unique,
                                             n_rows, use_lengths):
        rng = np.random.default_rng(seed)
        features, lengths = _pool_features(rng, n_unique, n_rows)
        naive = predict_proba(model, features, batch_size=7,
                              deduplicate=False)
        memoized = predict_proba(model, features, batch_size=7,
                                 lengths=lengths if use_lengths else None,
                                 deduplicate=True)
        np.testing.assert_array_equal(naive, memoized)

        engine = InferenceEngine(model, cache=PredictionCache(),
                                 batch_size=7)
        cold = engine.predict_proba(features,
                                    lengths=lengths if use_lengths else None)
        warm = engine.predict_proba(features,
                                    lengths=lengths if use_lengths else None)
        np.testing.assert_array_equal(naive, cold)
        np.testing.assert_array_equal(naive, warm)
        assert engine.last_stats.cache_hits == engine.last_stats.n_unique

    @pytest.mark.parametrize("n_unique,n_rows,batch_size", [
        (2, 8, 7),   # naive leaves a 1-row remainder chunk
        (1, 5, 7),   # engine evaluates a single representative
        (8, 8, 7),   # engine leaves the 1-row remainder
        (1, 1, 7),   # both paths see a single row
    ])
    def test_single_row_chunks_stay_bit_identical(self, model, n_unique,
                                                  n_rows, batch_size):
        """BLAS rounds 1-row matmuls differently from m>=2 batches;
        single-row chunks are duplicate-padded on both paths so the
        identity survives any remainder/unique-count combination."""
        rng = np.random.default_rng(0)
        features, lengths = _pool_features(rng, n_unique, n_rows)
        naive = predict_proba(model, features, batch_size=batch_size,
                              deduplicate=False)
        memoized = predict_proba(model, features, batch_size=batch_size,
                                 lengths=lengths, deduplicate=True)
        engine = InferenceEngine(model, cache=PredictionCache(),
                                 batch_size=batch_size)
        cold = engine.predict_proba(features, lengths=lengths)
        np.testing.assert_array_equal(naive, memoized)
        np.testing.assert_array_equal(naive, cold)

    def test_partial_cache_overlap(self, model):
        """A call mixing cached and novel cells stays bit-identical."""
        rng = np.random.default_rng(4)
        features_a, lengths_a = _pool_features(rng, 5, 20)
        features_b, lengths_b = _pool_features(rng, 5, 20)
        mixed = {k: np.concatenate([features_a[k], features_b[k]])
                 for k in features_a}
        mixed_lengths = np.concatenate([lengths_a, lengths_b])
        engine = InferenceEngine(model, cache=PredictionCache(),
                                 batch_size=6)
        engine.predict_proba(features_a, lengths=lengths_a)  # warm half
        got = engine.predict_proba(mixed, lengths=mixed_lengths)
        want = predict_proba(model, mixed, deduplicate=False)
        np.testing.assert_array_equal(got, want)
        assert engine.last_stats.cache_hits > 0
        assert engine.last_stats.cache_misses > 0

    def test_stats_reflect_duplicates(self, model):
        rng = np.random.default_rng(5)
        features, lengths = _pool_features(rng, 3, 30)
        engine = InferenceEngine(model, cache=PredictionCache())
        engine.predict_proba(features, lengths=lengths)
        stats = engine.last_stats
        assert stats.n_rows == 30
        assert stats.n_unique <= 3
        assert stats.n_evaluated == stats.n_unique
        assert stats.unique_ratio == stats.n_unique / 30
        assert engine.total_stats.n_rows == 30


class TestTable2Datasets:
    """Acceptance: bit-identity on all six Table-2 dataset generators."""

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_dataset_bit_identity(self, name):
        pair = load(name, n_rows=30, seed=1)
        prepared = prepare(pair.dirty, pair.clean)
        encoded = encode_cells(prepared)
        model = ETSBRNN(prepared.char_index.vocab_size,
                        prepared.attribute_index.vocab_size,
                        TINY, np.random.default_rng(0))
        model.eval()
        naive = predict_proba(model, encoded.features, deduplicate=False)
        memoized = predict_proba(model, encoded.features,
                                 lengths=encoded.lengths,
                                 dedup=encoded.dedup, deduplicate=True)
        engine = InferenceEngine(model, cache=PredictionCache())
        cached_cold = engine.predict_proba(encoded.features,
                                           lengths=encoded.lengths,
                                           dedup=encoded.dedup)
        cached_warm = engine.predict_proba(encoded.features,
                                           lengths=encoded.lengths,
                                           dedup=encoded.dedup)
        np.testing.assert_array_equal(naive, memoized)
        np.testing.assert_array_equal(naive, cached_cold)
        np.testing.assert_array_equal(naive, cached_warm)


class TestInvalidation:
    def _training_setup(self, cache):
        rng = np.random.default_rng(0)
        features, lengths = _pool_features(rng, 6, 24)
        labels = rng.integers(0, 2, size=24).astype(np.int64)
        model = TSBRNN(VOCAB, TINY, np.random.default_rng(1))
        trainer = Trainer(model=model,
                          optimizer=RMSprop(model.parameters(), 0.01),
                          loss_fn=lambda p, y: None,
                          rng=np.random.default_rng(2),
                          prediction_cache=cache)
        return trainer, model, features, labels, lengths

    def test_optimizer_step_flushes_stale_entries(self):
        cache = PredictionCache()
        trainer, model, features, labels, lengths = self._training_setup(cache)
        before = trainer.predict_proba(features, lengths=lengths)
        assert len(cache) > 0
        version = model.weights_version
        trainer.fit(features, labels, epochs=1, batch_size=24)
        assert model.weights_version > version  # steps bumped the version
        after = trainer.predict_proba(features, lengths=lengths)
        # The flush really happened: nothing was served from cache ...
        assert cache.invalidations >= 1
        assert trainer.inference_stats.cache_hits == 0
        # ... and the fresh predictions match a naive forward, not the
        # stale pre-training probabilities.
        naive = predict_proba(model, features, deduplicate=False)
        np.testing.assert_array_equal(after, naive)
        assert not np.array_equal(before, after)

    def test_checkpoint_restore_flushes_stale_entries(self):
        cache = PredictionCache()
        trainer, model, features, labels, lengths = self._training_setup(cache)
        checkpoint = BestWeightsCheckpoint()
        checkpoint.on_epoch_end(model, 0, {"loss": 1.0})  # snapshot now
        model.eval()
        snapshot_probs = predict_proba(model, features, deduplicate=False)
        trainer.fit(features, labels, epochs=1, batch_size=24)
        trainer.predict_proba(features, lengths=lengths)  # warm post-fit
        assert len(cache) > 0
        version = model.weights_version
        checkpoint.restore(model)
        assert model.weights_version > version
        restored = trainer.predict_proba(features, lengths=lengths)
        assert trainer.inference_stats.cache_hits == 0
        np.testing.assert_array_equal(restored, snapshot_probs)

    def test_load_state_dict_bumps_version(self):
        model = TSBRNN(VOCAB, TINY, np.random.default_rng(1))
        version = model.weights_version
        model.load_state_dict(model.state_dict())
        assert model.weights_version == version + 1
