"""Tests for the cross-call prediction cache (LRU + invalidation)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.inference import PredictionCache


def _probs(x):
    return np.array([x, 1 - x])


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = PredictionCache(capacity=4)
        cache.sync_version(1)
        assert cache.get(b"a") is None
        cache.put(b"a", _probs(0.3))
        np.testing.assert_array_equal(cache.get(b"a"), _probs(0.3))
        assert cache.hits == 1 and cache.misses == 1

    def test_put_copies(self):
        cache = PredictionCache()
        cache.sync_version(0)
        probs = _probs(0.5)
        cache.put(b"a", probs)
        probs[:] = 0.0
        np.testing.assert_array_equal(cache.get(b"a"), _probs(0.5))

    def test_capacity_evicts_least_recently_used(self):
        cache = PredictionCache(capacity=2)
        cache.sync_version(0)
        cache.put(b"a", _probs(0.1))
        cache.put(b"b", _probs(0.2))
        cache.get(b"a")          # refresh a; b is now LRU
        cache.put(b"c", _probs(0.3))
        assert cache.get(b"a") is not None
        assert cache.get(b"b") is None
        assert cache.get(b"c") is not None
        assert len(cache) == 2

    def test_resize_evicts(self):
        cache = PredictionCache(capacity=4)
        cache.sync_version(0)
        for i in range(4):
            cache.put(bytes([i]), _probs(0.1))
        cache.resize(2)
        assert len(cache) == 2
        assert cache.get(bytes([3])) is not None  # most recent survives

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            PredictionCache(capacity=0)
        with pytest.raises(ConfigurationError):
            PredictionCache().resize(0)


class TestInvalidation:
    def test_sync_version_flushes_on_change(self):
        cache = PredictionCache()
        cache.sync_version(1)
        cache.put(b"a", _probs(0.4))
        cache.sync_version(2)
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.get(b"a") is None

    def test_sync_same_version_keeps_entries(self):
        cache = PredictionCache()
        cache.sync_version(1)
        cache.put(b"a", _probs(0.4))
        cache.sync_version(1)
        assert len(cache) == 1
        assert cache.invalidations == 0

    def test_explicit_invalidate(self):
        cache = PredictionCache()
        cache.sync_version(1)
        cache.put(b"a", _probs(0.4))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.version is None
        assert cache.invalidations == 1

    def test_counters_survive_invalidation(self):
        cache = PredictionCache()
        cache.sync_version(1)
        cache.put(b"a", _probs(0.4))
        cache.get(b"a")
        cache.invalidate()
        assert cache.hits == 1

    def test_stats_snapshot(self):
        cache = PredictionCache(capacity=8)
        cache.sync_version(1)
        cache.get(b"a")
        cache.put(b"a", _probs(0.4))
        cache.get(b"a")
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
