"""Multi-threaded stress tests for the PredictionCache lock.

These hammer the cache from many threads and then check the global
counter invariants that only hold if every lookup/insert/eviction was
serialised: no lost updates (hits + misses == lookups issued), no
double evictions (unique inserts - resident == evicted), and a racing
version bump flushing exactly once.
"""

import threading

import numpy as np
import pytest

from repro.inference import PredictionCache

N_THREADS = 8
N_OPS = 400


def run_threads(target, n=N_THREADS):
    barrier = threading.Barrier(n)
    errors = []

    def wrapped(i):
        try:
            barrier.wait()
            target(i)
        except Exception as exc:  # noqa: BLE001 -- surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors


class TestConcurrentGetPut:
    def test_counters_account_for_every_operation(self):
        cache = PredictionCache(capacity=64)
        cache.sync_version(1)
        probabilities = np.array([0.25, 0.75])

        def worker(i):
            # Disjoint key ranges: every put inserts a distinct key, so
            # eviction accounting below is exact.
            for j in range(N_OPS):
                key = f"{i}:{j}".encode()
                if cache.get(key) is None:
                    cache.put(key, probabilities)

        run_threads(worker)
        stats = cache.stats()
        assert stats["size"] <= 64
        # Every lookup was counted exactly once (no torn counters).
        assert stats["hits"] + stats["misses"] == N_THREADS * N_OPS
        # Every distinct key was inserted once; whatever is not
        # resident was evicted exactly once (no double evictions).
        assert stats["misses"] == N_THREADS * N_OPS  # all keys distinct
        assert stats["evictions"] == N_THREADS * N_OPS - stats["size"]
        assert stats["invalidations"] == 0

    def test_shared_hot_keys_return_consistent_entries(self):
        cache = PredictionCache(capacity=32)
        cache.sync_version(1)
        expected = {f"k{j}".encode(): np.array([float(j), 1.0 - j])
                    for j in range(16)}

        def worker(i):
            for j in range(N_OPS):
                key = f"k{j % 16}".encode()
                entry = cache.get(key)
                if entry is None:
                    cache.put(key, expected[key])
                else:
                    np.testing.assert_array_equal(entry, expected[key])

        run_threads(worker)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == N_THREADS * N_OPS
        assert stats["size"] <= 16
        assert stats["evictions"] == 0

    def test_put_stores_a_copy(self):
        cache = PredictionCache(capacity=4)
        source = np.array([0.5, 0.5])
        cache.sync_version(1)
        cache.put(b"k", source)
        source[0] = 99.0
        np.testing.assert_array_equal(cache.get(b"k"), [0.5, 0.5])


class TestConcurrentVersionSync:
    def test_racing_bump_flushes_exactly_once(self):
        cache = PredictionCache(capacity=256)
        cache.sync_version(1)
        for j in range(100):
            cache.put(f"k{j}".encode(), np.array([0.1, 0.9]))
        assert len(cache) == 100

        run_threads(lambda i: cache.sync_version(2))
        assert cache.version == 2
        assert len(cache) == 0
        # All eight racing threads observed one atomic check-and-clear.
        assert cache.stats()["invalidations"] == 1

    def test_bump_during_traffic_keeps_invariants(self):
        cache = PredictionCache(capacity=128)
        cache.sync_version(0)
        probabilities = np.array([0.5, 0.5])
        stop = threading.Event()

        def churn(i):
            j = 0
            while not stop.is_set():
                key = f"{i}:{j % 50}".encode()
                if cache.get(key) is None:
                    cache.put(key, probabilities)
                j += 1

        churners = [threading.Thread(target=churn, args=(i,))
                    for i in range(4)]
        for thread in churners:
            thread.start()
        for version in range(1, 21):
            cache.sync_version(version)
        stop.set()
        for thread in churners:
            thread.join()
        stats = cache.stats()
        assert stats["size"] <= 128
        assert stats["hits"] + stats["misses"] > 0
        # At most one flush per distinct version, regardless of racing
        # lookups repopulating between bumps.
        assert stats["invalidations"] <= 20


class TestLockedResize:
    def test_concurrent_resize_and_put(self):
        cache = PredictionCache(capacity=256)
        cache.sync_version(1)
        probabilities = np.array([0.5, 0.5])

        def worker(i):
            for j in range(N_OPS // 4):
                cache.put(f"{i}:{j}".encode(), probabilities)
                if j % 16 == 0:
                    cache.resize(64 if j % 32 else 256)

        run_threads(worker)
        cache.resize(8)
        assert len(cache) <= 8

    def test_capacity_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PredictionCache(capacity=0)
        with pytest.raises(ConfigurationError):
            PredictionCache(capacity=4).resize(0)
