"""Tests for the detection-strategy ensemble."""

import numpy as np
import pytest

from repro.baselines import (
    FDViolationStrategy,
    LengthOutlierStrategy,
    MissingValueStrategy,
    PatternProfileStrategy,
    ValueFrequencyStrategy,
    default_strategies,
)
from repro.baselines.strategies import character_pattern, run_strategies
from repro.errors import ConfigurationError
from repro.table import Table


class TestCharacterPattern:
    def test_digits_collapse(self):
        assert character_pattern("12345") == "9"

    def test_mixed_value(self):
        assert character_pattern("12.0 oz") == "9.9_a"

    def test_letters(self):
        assert character_pattern("Rome") == "a"

    def test_punctuation_kept(self):
        assert character_pattern("0.061%") == "9.9%"

    def test_empty(self):
        assert character_pattern("") == ""


class TestMissingValueStrategy:
    def test_flags_markers(self):
        table = Table({"a": ["NaN", "x", "", "n/a"]})
        verdicts = MissingValueStrategy().detect(table)
        assert verdicts[:, 0].tolist() == [True, False, True, True]

    def test_none_cells_flagged(self):
        table = Table({"a": [None, "x"]})
        assert MissingValueStrategy().detect(table)[0, 0]

    def test_custom_markers(self):
        table = Table({"a": ["missing", "x"]})
        strategy = MissingValueStrategy(markers=["missing"])
        assert strategy.detect(table)[:, 0].tolist() == [True, False]


class TestPatternProfileStrategy:
    def test_rare_pattern_flagged(self):
        values = ["12.0"] * 40 + ["12.0 oz"]
        table = Table({"a": values})
        verdicts = PatternProfileStrategy(max_pattern_share=0.05).detect(table)
        assert verdicts[-1, 0]
        assert not verdicts[0, 0]

    def test_uniform_column_clean(self):
        table = Table({"a": ["1.5"] * 30})
        assert not PatternProfileStrategy().detect(table).any()

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            PatternProfileStrategy(max_pattern_share=0.0)


class TestValueFrequencyStrategy:
    def test_rare_value_in_categorical_column(self):
        values = ["CA"] * 20 + ["NY"] * 20 + ["Cx"]
        table = Table({"state": values})
        verdicts = ValueFrequencyStrategy().detect(table)
        assert verdicts[-1, 0]
        assert not verdicts[0, 0]

    def test_high_cardinality_column_skipped(self):
        table = Table({"id": [str(i) for i in range(50)]})
        assert not ValueFrequencyStrategy().detect(table).any()

    def test_max_count_validation(self):
        with pytest.raises(ConfigurationError):
            ValueFrequencyStrategy(max_count=0)


class TestLengthOutlierStrategy:
    def test_extreme_length_flagged(self):
        values = ["abcde"] * 30 + ["a" * 60]
        table = Table({"a": values})
        verdicts = LengthOutlierStrategy().detect(table)
        assert verdicts[-1, 0]
        assert not verdicts[0, 0]

    def test_constant_length_column_clean(self):
        table = Table({"a": ["xx"] * 10})
        assert not LengthOutlierStrategy().detect(table).any()

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            LengthOutlierStrategy(z_threshold=0.0)


class TestFDViolationStrategy:
    def test_violating_row_flagged_on_both_sides(self):
        table = Table({
            "city": ["Rome"] * 10 + ["Paris"] * 10,
            "state": ["IT"] * 10 + ["FR"] * 9 + ["IT"],
        })
        verdicts = FDViolationStrategy().detect(table)
        assert verdicts[19, 1]  # state flagged
        assert verdicts[19, 0]  # determinant flagged too
        assert not verdicts[0, 1]

    def test_clean_fd_unflagged(self):
        table = Table({
            "city": ["Rome", "Paris"] * 10,
            "state": ["IT", "FR"] * 10,
        })
        assert not FDViolationStrategy().detect(table).any()


class TestRunStrategies:
    def test_stacked_shape(self, paper_example):
        dirty, _ = paper_example
        strategies = default_strategies()
        verdicts = run_strategies(dirty, strategies)
        assert verdicts.shape == (5, 4, len(strategies))

    def test_empty_strategy_list_rejected(self, paper_example):
        dirty, _ = paper_example
        with pytest.raises(ConfigurationError):
            run_strategies(dirty, [])

    def test_default_ensemble_catches_table1_mv(self, paper_example):
        """'NaN' in City must be caught by the missing-value strategy."""
        dirty, _ = paper_example
        verdicts = run_strategies(dirty, default_strategies())
        city = dirty.column_names.index("City")
        assert verdicts[0, city, :].any()
