"""Tests for agglomerative clustering and logistic regression."""

import numpy as np
import pytest

from repro.baselines import LogisticRegression, agglomerative_clusters
from repro.errors import ConfigurationError, NotFittedError


class TestClustering:
    def test_two_obvious_clusters(self):
        a = np.zeros((10, 3))
        b = np.ones((10, 3))
        labels = agglomerative_clusters(np.vstack([a, b]), 2)
        assert len(set(labels[:10])) == 1
        assert len(set(labels[10:])) == 1
        assert labels[0] != labels[10]

    def test_n_clusters_respected(self, rng):
        vectors = rng.normal(size=(30, 4))
        labels = agglomerative_clusters(vectors, 5)
        assert len(set(labels.tolist())) == 5

    def test_n_clusters_capped_at_n(self):
        labels = agglomerative_clusters(np.eye(3), 10)
        assert len(set(labels.tolist())) == 3

    def test_identical_vectors_one_cluster(self):
        labels = agglomerative_clusters(np.ones((20, 2)), 5)
        assert len(set(labels.tolist())) == 1

    def test_empty_input(self):
        assert agglomerative_clusters(np.zeros((0, 3)), 2).shape == (0,)

    def test_subsampling_path_consistent(self, rng):
        """Above max_points, out-of-sample rows join the right centroid."""
        a = np.zeros((60, 2))
        b = np.ones((60, 2))
        vectors = np.vstack([a, b])
        labels = agglomerative_clusters(vectors, 2, max_points=40, rng=rng)
        assert len(set(labels[:60])) == 1
        assert len(set(labels[60:])) == 1
        assert labels[0] != labels[60]

    def test_deterministic_default_rng(self, rng):
        vectors = np.random.default_rng(0).normal(size=(25, 3))
        a = agglomerative_clusters(vectors, 4)
        b = agglomerative_clusters(vectors, 4)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            agglomerative_clusters(np.zeros(5), 2)
        with pytest.raises(ConfigurationError):
            agglomerative_clusters(np.zeros((5, 2)), 0)


class TestLogisticRegression:
    def test_separable_problem(self, rng):
        x = rng.normal(size=(200, 2))
        y = (x[:, 0] > 0).astype(np.int64)
        model = LogisticRegression().fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_probabilities_bounded(self, rng):
        x = rng.normal(size=(50, 3))
        y = rng.integers(0, 2, size=50)
        probs = LogisticRegression().fit(x, y).predict_proba(x)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_balanced_weighting_helps_minority(self, rng):
        """With 5% positives, balanced weighting must still find them."""
        x = np.vstack([rng.normal(0, 0.3, size=(190, 1)),
                       rng.normal(3, 0.3, size=(10, 1))])
        y = np.array([0] * 190 + [1] * 10)
        balanced = LogisticRegression(class_weight="balanced").fit(x, y)
        assert balanced.predict(x)[190:].mean() > 0.8

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_threshold(self, rng):
        x = rng.normal(size=(50, 2))
        y = (x[:, 0] > 0).astype(np.int64)
        model = LogisticRegression().fit(x, y)
        strict = model.predict(x, threshold=0.99).sum()
        lax = model.predict(x, threshold=0.01).sum()
        assert strict <= lax

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ConfigurationError):
            LogisticRegression(n_iterations=0)
        with pytest.raises(ConfigurationError):
            LogisticRegression(class_weight="weird")
        with pytest.raises(ConfigurationError):
            LogisticRegression().fit(np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ConfigurationError):
            LogisticRegression().fit(np.zeros((0, 2)), np.zeros(0))
