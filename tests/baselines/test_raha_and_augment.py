"""Tests for the Raha-style detector and the augmentation baseline."""

import numpy as np
import pytest

from repro.baselines import AugmentationDetector, RahaDetector
from repro.baselines.augment import (
    hashed_ngram_features,
    op_case_flip,
    op_delete_char,
    op_duplicate_char,
    op_swap_adjacent,
)
from repro.datasets import load
from repro.errors import ConfigurationError, NotFittedError
from repro.table import Table


class TestRahaDetector:
    @pytest.fixture
    def pair(self):
        return load("hospital", n_rows=80, seed=3)

    def test_analyze_then_sample(self, pair, rng):
        detector = RahaDetector(rng=rng)
        detector.analyze(pair.dirty, n_labels=5)
        rows = detector.sample_tuples(5)
        assert len(set(rows)) == 5
        assert all(0 <= r < pair.n_rows for r in rows)

    def test_sample_before_analyze_raises(self, rng):
        with pytest.raises(NotFittedError):
            RahaDetector(rng=rng).sample_tuples(3)

    def test_fit_predict_shape(self, pair, rng):
        detector = RahaDetector(rng=rng)
        detector.analyze(pair.dirty, n_labels=5)
        rows = detector.sample_tuples(5)
        mask = np.array(pair.error_mask())
        predictions = detector.fit_predict(rows, mask[rows].astype(np.int64))
        assert predictions.shape == pair.dirty.shape
        assert set(np.unique(predictions)) <= {0, 1}

    def test_detects_hospital_typos_well(self, pair, rng):
        """x-marked typos are pattern-profile catchable: F1 must be high."""
        from repro.metrics import f1_score
        detector = RahaDetector(rng=rng)
        detector.analyze(pair.dirty, n_labels=10)
        rows = detector.sample_tuples(10)
        mask = np.array(pair.error_mask())
        predictions = detector.fit_predict(rows, mask[rows].astype(np.int64))
        test_rows = [i for i in range(pair.n_rows) if i not in set(rows)]
        score = f1_score(mask[test_rows].astype(int).reshape(-1),
                         predictions[test_rows].reshape(-1))
        assert score > 0.5

    def test_label_shape_validation(self, pair, rng):
        detector = RahaDetector(rng=rng)
        detector.analyze(pair.dirty, n_labels=3)
        rows = detector.sample_tuples(3)
        with pytest.raises(ConfigurationError):
            detector.fit_predict(rows, np.zeros((2, pair.n_attributes)))

    def test_oversampling_rejected(self, rng):
        tiny = Table({"a": ["1", "2"], "b": ["x", "y"]})
        detector = RahaDetector(rng=rng)
        detector.analyze(tiny, n_labels=2)
        with pytest.raises(ConfigurationError):
            detector.sample_tuples(3)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RahaDetector(clusters_per_label=0)


class TestAugmentOps:
    def test_delete_char_shortens(self, rng):
        assert len(op_delete_char("hello", rng)) == 4

    def test_duplicate_char_lengthens(self, rng):
        assert len(op_duplicate_char("hello", rng)) == 6

    def test_swap_preserves_multiset(self, rng):
        out = op_swap_adjacent("abcd", rng)
        assert sorted(out) == list("abcd")

    def test_case_flip_changes_one_letter(self, rng):
        out = op_case_flip("abc", rng)
        assert out.lower() == "abc"
        assert sum(a != b for a, b in zip(out, "abc")) == 1

    def test_ops_safe_on_empty(self, rng):
        assert op_delete_char("", rng) == ""
        assert op_swap_adjacent("x", rng) == "x"
        assert op_case_flip("123", rng) == "123"


class TestHashedNgramFeatures:
    def test_fixed_width(self):
        assert hashed_ngram_features("abc").shape == \
            hashed_ngram_features("a completely different text").shape

    def test_empty_flag_feature(self):
        assert hashed_ngram_features("")[-1] == 1.0
        assert hashed_ngram_features("x")[-1] == 0.0

    def test_same_text_same_features(self):
        np.testing.assert_array_equal(hashed_ngram_features("abc"),
                                      hashed_ngram_features("abc"))


class TestAugmentationDetector:
    def test_learns_simple_error_family(self, rng):
        correct = [f"{i}.0" for i in range(30)]
        wrong = [f"{i}.0 oz" for i in range(30)]
        detector = AugmentationDetector(rng=rng)
        detector.fit(correct + wrong, [0] * 30 + [1] * 30)
        predictions = detector.predict(["5.0", "7.0 oz"])
        assert predictions.tolist() == [0, 1]

    def test_single_class_degenerates_to_constant(self, rng):
        detector = AugmentationDetector(rng=rng)
        detector.fit(["a", "b"], [0, 0])
        assert detector.predict(["zzz"]).tolist() == [0]

    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(NotFittedError):
            AugmentationDetector(rng=rng).predict(["x"])

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            AugmentationDetector(n_augments=-1)
        with pytest.raises(ConfigurationError):
            AugmentationDetector(n_augments=2, ops=())
        with pytest.raises(ConfigurationError):
            AugmentationDetector(rng=rng).fit(["a"], [0, 1])
        with pytest.raises(ConfigurationError):
            AugmentationDetector(rng=rng).fit([], [])

    def test_zero_augments_still_works(self, rng):
        detector = AugmentationDetector(n_augments=0, rng=rng)
        detector.fit(["1.0", "1.0 oz"], [0, 1])
        assert detector.predict(["1.0"]).shape == (1,)
