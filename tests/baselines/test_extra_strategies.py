"""Tests for the numeric-outlier and domain-dictionary strategies."""

import numpy as np
import pytest

from repro.baselines import DomainDictionaryStrategy, NumericOutlierStrategy
from repro.errors import ConfigurationError
from repro.table import Table


class TestNumericOutlierStrategy:
    def test_extreme_value_flagged(self):
        table = Table({"salary": ["90000", "85000", "99000", "92000", "850"]})
        verdicts = NumericOutlierStrategy(z_threshold=1.5).detect(table)
        assert verdicts[4, 0]
        assert not verdicts[0, 0]

    def test_unparsable_cell_in_numeric_column_flagged(self):
        values = ["12.0"] * 20 + ["12.0 oz"]
        table = Table({"ounces": values})
        verdicts = NumericOutlierStrategy().detect(table)
        assert verdicts[-1, 0]

    def test_text_column_skipped(self):
        table = Table({"city": ["Rome", "Paris", "Berlin", "Vienna"]})
        assert not NumericOutlierStrategy().detect(table).any()

    def test_thousands_separator_parses(self):
        values = [str(900 + i * 20) for i in range(10)] + ["1,050"]
        table = Table({"count": values})
        verdicts = NumericOutlierStrategy().detect(table)
        assert not verdicts[-1, 0]  # parses fine and is in range

    def test_constant_column_no_flags(self):
        table = Table({"x": ["5"] * 10})
        assert not NumericOutlierStrategy().detect(table).any()

    def test_empty_cells_ignored(self):
        table = Table({"x": ["1", "", "2", "3"]})
        verdicts = NumericOutlierStrategy().detect(table)
        assert not verdicts[1, 0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NumericOutlierStrategy(z_threshold=0)
        with pytest.raises(ConfigurationError):
            NumericOutlierStrategy(min_numeric_share=0.0)


class TestDomainDictionaryStrategy:
    def test_out_of_domain_flagged(self):
        table = Table({"state": ["CA", "NY", "Cx"]})
        strategy = DomainDictionaryStrategy({"state": ["CA", "NY", "TX"]})
        verdicts = strategy.detect(table)
        assert verdicts[:, 0].tolist() == [False, False, True]

    def test_case_insensitive_by_default(self):
        table = Table({"state": ["ca", "CA"]})
        strategy = DomainDictionaryStrategy({"state": ["CA"]})
        assert not strategy.detect(table).any()

    def test_case_sensitive_mode(self):
        table = Table({"state": ["ca", "CA"]})
        strategy = DomainDictionaryStrategy({"state": ["CA"]},
                                            case_sensitive=True)
        assert strategy.detect(table)[:, 0].tolist() == [True, False]

    def test_unconfigured_columns_skipped(self):
        table = Table({"state": ["??"], "city": ["??"]})
        strategy = DomainDictionaryStrategy({"state": ["CA"]})
        verdicts = strategy.detect(table)
        assert verdicts[0, 0]
        assert not verdicts[0, 1]

    def test_empty_cells_not_flagged(self):
        table = Table({"state": ["", "CA"]})
        strategy = DomainDictionaryStrategy({"state": ["CA"]})
        assert not strategy.detect(table).any()

    def test_empty_domains_rejected(self):
        with pytest.raises(ConfigurationError):
            DomainDictionaryStrategy({})

    def test_in_raha_ensemble(self):
        """The strategy composes with the Raha detector end to end."""
        from repro.baselines import RahaDetector, default_strategies
        from repro.datasets import load

        pair = load("hospital", n_rows=50, seed=4)
        states = [s.lower() for s in
                  {"ca", "or", "wa", "co", "il", "ma", "ny", "tx", "fl",
                   "ga", "tn", "az", "al", "mo", "oh"}]
        strategies = default_strategies() + [
            DomainDictionaryStrategy({"state": states})]
        detector = RahaDetector(strategies=strategies,
                                rng=np.random.default_rng(0))
        detector.analyze(pair.dirty, n_labels=5)
        rows = detector.sample_tuples(5)
        mask = np.array(pair.error_mask())
        predictions = detector.fit_predict(rows, mask[rows].astype(np.int64))
        assert predictions.shape == pair.dirty.shape
