"""Tests for the Tensor type: arithmetic, shapes, reductions, backward."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.errors import GraphError, ShapeError


class TestConstruction:
    def test_data_is_float64(self):
        assert Tensor([1, 2]).data.dtype == np.float64

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_zeros_ones(self):
        assert Tensor.zeros(2, 2).data.sum() == 0
        assert Tensor.ones(2, 2).data.sum() == 4

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_non_scalar_raises(self):
        with pytest.raises(ShapeError):
            Tensor([1, 2]).item()

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1], requires_grad=True))


class TestArithmetic:
    def test_add(self):
        assert ((Tensor([1, 2]) + Tensor([3, 4])).data == [4, 6]).all()

    def test_add_scalar(self):
        assert ((Tensor([1, 2]) + 1).data == [2, 3]).all()

    def test_radd(self):
        assert ((1 + Tensor([1, 2])).data == [2, 3]).all()

    def test_sub_rsub(self):
        assert ((Tensor([3]) - 1).data == [2]).all()
        assert ((5 - Tensor([3])).data == [2]).all()

    def test_mul_div(self):
        assert ((Tensor([2, 4]) * Tensor([3, 5])).data == [6, 20]).all()
        assert ((Tensor([6]) / 3).data == [2]).all()

    def test_rtruediv(self):
        assert ((6 / Tensor([3])).data == [2]).all()

    def test_neg(self):
        assert ((-Tensor([1, -2])).data == [-1, 2]).all()

    def test_pow(self):
        assert ((Tensor([2, 3]) ** 2).data == [4, 9]).all()

    def test_pow_non_scalar_rejected(self):
        with pytest.raises(ShapeError):
            Tensor([2]) ** Tensor([2])

    def test_matmul_2d(self):
        a = Tensor([[1, 2], [3, 4]])
        b = Tensor([[1, 0], [0, 1]])
        assert ((a @ b).data == a.data).all()

    def test_matmul_batched(self):
        a = Tensor(np.ones((4, 3, 2)))
        b = Tensor(np.ones((2, 5)))
        assert (a @ b).shape == (4, 3, 5)

    def test_broadcasting_add(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.ones(3))
        assert (a + b).shape == (2, 3)


class TestShapeOps:
    def test_reshape(self):
        assert Tensor(np.arange(6)).reshape(2, 3).shape == (2, 3)

    def test_transpose_default(self):
        assert Tensor(np.zeros((2, 3, 4))).transpose().shape == (4, 3, 2)

    def test_transpose_axes(self):
        assert Tensor(np.zeros((2, 3, 4))).transpose(1, 0, 2).shape == (3, 2, 4)

    def test_getitem(self):
        t = Tensor(np.arange(12).reshape(3, 4))
        assert t[1, 2].data == 6
        assert t[:, 1].shape == (3,)


class TestReductions:
    def test_sum_all(self):
        assert Tensor([[1, 2], [3, 4]]).sum().item() == 10

    def test_sum_axis(self):
        assert (Tensor([[1, 2], [3, 4]]).sum(axis=0).data == [4, 6]).all()

    def test_sum_keepdims(self):
        assert Tensor([[1, 2]]).sum(axis=1, keepdims=True).shape == (1, 1)

    def test_mean(self):
        assert Tensor([1, 2, 3]).mean().item() == 2

    def test_mean_axis(self):
        assert (Tensor([[1, 3], [5, 7]]).mean(axis=1).data == [2, 6]).all()

    def test_max(self):
        assert (Tensor([[1, 9], [5, 2]]).max(axis=1).data == [9, 5]).all()

    def test_clip(self):
        assert ((Tensor([-2, 0.5, 2]).clip(0, 1)).data == [0, 0.5, 1]).all()

    def test_exp_log_inverse(self):
        t = Tensor([0.5, 1.5])
        np.testing.assert_allclose(t.exp().log().data, t.data)

    def test_sqrt(self):
        assert (Tensor([4.0, 9.0]).sqrt().data == [2, 3]).all()


class TestBackward:
    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3 + 1) ** 2  # y = (3x+1)^2, dy/dx = 6(3x+1) = 42
        y.sum().backward()
        assert x.grad[0] == pytest.approx(42.0)

    def test_grad_accumulates_on_reuse(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * x  # dy/dx = 2x = 2, via two paths
        y.sum().backward()
        assert x.grad[0] == pytest.approx(2.0)

    def test_backward_non_scalar_requires_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GraphError):
            (x * 2).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2).backward(np.array([1.0, 10.0]))
        assert (x.grad == [2.0, 20.0]).all()

    def test_backward_without_grad_flag_raises(self):
        with pytest.raises(GraphError):
            Tensor([1.0]).backward()

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        x = Tensor([3.0], requires_grad=True)
        a = x * 2
        b = x * 5
        (a + b).sum().backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_no_grad_blocks_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_restores_on_exception(self):
        from repro.autograd.tensor import grad_enabled
        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert grad_enabled()

    def test_broadcast_gradient_unbroadcast(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert (b.grad == 2).all()

    def test_accumulate_grad_shape_check(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ShapeError):
            x.accumulate_grad(np.zeros((3,)))
