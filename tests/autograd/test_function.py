"""Tests for the custom-op Function base class."""

import numpy as np
import pytest

from repro.autograd import Function, Tensor, gradcheck_function, no_grad
from repro.errors import GraphError


class Square(Function):
    @staticmethod
    def forward(ctx, x):
        ctx.x = x
        return x * x

    @staticmethod
    def backward(ctx, grad):
        return (2.0 * ctx.x * grad,)


class ScaledAdd(Function):
    """a + scale * b, with a non-tensor argument in the middle."""

    @staticmethod
    def forward(ctx, a, scale, b):
        ctx.scale = scale
        return a + scale * b

    @staticmethod
    def backward(ctx, grad):
        da = grad if ctx.needs_input_grad[0] else None
        db = ctx.scale * grad if ctx.needs_input_grad[1] else None
        return da, db


class WrongArity(Function):
    @staticmethod
    def forward(ctx, a, b):
        return a + b

    @staticmethod
    def backward(ctx, grad):
        return (grad,)  # one gradient for two tensor inputs


class TestFunctionApply:
    def test_forward_value(self):
        x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
        np.testing.assert_array_equal(Square.apply(x).data, [1.0, 4.0, 9.0])

    def test_backward_through_graph_ops(self):
        """A Function node composes with ordinary graph nodes."""
        x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
        (Square.apply(x) * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, 6.0 * x.data)

    def test_non_tensor_arguments_skipped(self):
        a = Tensor(np.ones(4), requires_grad=True)
        b = Tensor(np.full(4, 2.0), requires_grad=True)
        out = ScaledAdd.apply(a, 0.5, b)
        np.testing.assert_array_equal(out.data, np.full(4, 2.0))
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(4))
        np.testing.assert_allclose(b.grad, np.full(4, 0.5))

    def test_needs_input_grad_mirrors_requires_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3))  # constant: no gradient requested
        out = ScaledAdd.apply(a, 2.0, b)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        assert b.grad is None

    def test_no_grad_mode_detaches(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = Square.apply(x)
        assert not out.requires_grad

    def test_constant_inputs_detach(self):
        out = Square.apply(Tensor(np.ones(3)))
        assert not out.requires_grad

    def test_wrong_gradient_count_rejected(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        out = WrongArity.apply(a, b)
        with pytest.raises(GraphError):
            out.sum().backward()

    def test_scalar_output_promoted_to_array(self):
        class Mean(Function):
            @staticmethod
            def forward(ctx, x):
                ctx.n = x.size
                return x.mean()

            @staticmethod
            def backward(ctx, grad):
                return (np.full(ctx.n, float(grad) / ctx.n),)

        x = Tensor(np.arange(4.0), requires_grad=True)
        loss = Mean.apply(x)
        assert loss.item() == 1.5
        loss.backward()
        np.testing.assert_allclose(x.grad, np.full(4, 0.25))


class TestGradcheckFunction:
    def test_passes_for_correct_backward(self):
        x = Tensor(np.array([0.3, -0.7, 1.1]), requires_grad=True)
        gradcheck_function(Square, (x,))

    def test_catches_wrong_backward(self):
        class BadSquare(Function):
            @staticmethod
            def forward(ctx, x):
                ctx.x = x
                return x * x

            @staticmethod
            def backward(ctx, grad):
                return (3.0 * ctx.x * grad,)  # wrong factor

        x = Tensor(np.array([0.5, 1.5]), requires_grad=True)
        with pytest.raises(AssertionError):
            gradcheck_function(BadSquare, (x,))

    def test_scalar_output_checked_directly(self):
        class SumSq(Function):
            @staticmethod
            def forward(ctx, x):
                ctx.x = x
                return (x * x).sum()

            @staticmethod
            def backward(ctx, grad):
                return (2.0 * ctx.x * float(grad),)

        x = Tensor(np.array([0.2, -0.4, 0.9]), requires_grad=True)
        gradcheck_function(SumSq, (x,))
