"""Tests for the functional ops (forward behaviour)."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    concat,
    embedding_lookup,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    stack,
    tanh,
    where,
)
from repro.errors import ShapeError


class TestActivations:
    def test_tanh_range(self):
        out = tanh(Tensor([-100.0, 0.0, 100.0]))
        np.testing.assert_allclose(out.data, [-1.0, 0.0, 1.0], atol=1e-12)

    def test_relu(self):
        assert (relu(Tensor([-1.0, 0.0, 2.0])).data == [0, 0, 2]).all()

    def test_sigmoid_midpoint(self):
        assert sigmoid(Tensor([0.0])).data[0] == pytest.approx(0.5)

    def test_sigmoid_saturation_no_overflow(self):
        out = sigmoid(Tensor([-1000.0, 1000.0]))
        assert np.isfinite(out.data).all()


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(Tensor([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out.data.sum(axis=1), [1.0, 1.0])

    def test_shift_invariance(self):
        a = softmax(Tensor([[1.0, 2.0]]))
        b = softmax(Tensor([[1001.0, 1002.0]]))
        np.testing.assert_allclose(a.data, b.data)

    def test_log_softmax_consistent(self):
        logits = Tensor([[0.3, -1.2, 2.0]])
        np.testing.assert_allclose(
            log_softmax(logits).data, np.log(softmax(logits).data))

    def test_extreme_logits_finite(self):
        out = log_softmax(Tensor([[1e4, -1e4]]))
        assert np.isfinite(out.data).all()


class TestEmbedding:
    def test_lookup_shape(self):
        weights = Tensor(np.arange(12.0).reshape(4, 3))
        out = embedding_lookup(weights, np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 3)

    def test_lookup_values(self):
        weights = Tensor(np.arange(12.0).reshape(4, 3))
        out = embedding_lookup(weights, np.array([2]))
        assert (out.data == [[6, 7, 8]]).all()

    def test_float_indices_rejected(self):
        with pytest.raises(ShapeError):
            embedding_lookup(Tensor(np.zeros((3, 2))), np.array([0.5]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ShapeError):
            embedding_lookup(Tensor(np.zeros((3, 2))), np.array([3]))

    def test_non_2d_weights_rejected(self):
        with pytest.raises(ShapeError):
            embedding_lookup(Tensor(np.zeros(3)), np.array([0]))

    def test_repeated_index_grad_accumulates(self):
        weights = Tensor(np.zeros((3, 2)), requires_grad=True)
        out = embedding_lookup(weights, np.array([1, 1]))
        out.sum().backward()
        assert (weights.grad[1] == [2, 2]).all()
        assert (weights.grad[0] == [0, 0]).all()


class TestConcatStack:
    def test_concat_last_axis(self):
        out = concat([Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 2)))])
        assert out.shape == (2, 5)

    def test_concat_axis0(self):
        out = concat([Tensor(np.ones((2, 3))), Tensor(np.zeros((1, 3)))], axis=0)
        assert out.shape == (3, 3)

    def test_concat_empty_rejected(self):
        with pytest.raises(ShapeError):
            concat([])

    def test_concat_gradient_routes_to_parts(self):
        a = Tensor(np.ones((1, 2)), requires_grad=True)
        b = Tensor(np.ones((1, 3)), requires_grad=True)
        out = concat([a, b])
        out.backward(np.array([[1.0, 2.0, 3.0, 4.0, 5.0]]))
        assert (a.grad == [[1, 2]]).all()
        assert (b.grad == [[3, 4, 5]]).all()

    def test_stack_new_axis(self):
        out = stack([Tensor(np.ones((2, 3)))] * 4, axis=1)
        assert out.shape == (2, 4, 3)

    def test_stack_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            stack([Tensor(np.ones(2)), Tensor(np.ones(3))])

    def test_stack_empty_rejected(self):
        with pytest.raises(ShapeError):
            stack([])

    def test_stack_gradient_splits(self):
        a = Tensor(np.zeros(2), requires_grad=True)
        b = Tensor(np.zeros(2), requires_grad=True)
        stack([a, b], axis=0).backward(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert (a.grad == [1, 2]).all()
        assert (b.grad == [3, 4]).all()


class TestWhere:
    def test_select(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]),
                    Tensor([9.0, 9.0]))
        assert (out.data == [1, 9]).all()

    def test_gradient_masked(self):
        a = Tensor([1.0, 1.0], requires_grad=True)
        b = Tensor([2.0, 2.0], requires_grad=True)
        where(np.array([True, False]), a, b).backward(np.array([1.0, 1.0]))
        assert (a.grad == [1, 0]).all()
        assert (b.grad == [0, 1]).all()

    def test_broadcast_condition(self):
        cond = np.array([[True], [False]])
        out = where(cond, Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 3))))
        assert (out.data[0] == 1).all()
        assert (out.data[1] == 0).all()
