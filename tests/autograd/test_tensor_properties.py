"""Property-based tests for the autograd engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor, softmax, tanh
from repro.autograd.tensor import unbroadcast

floats = st.floats(-10, 10, allow_nan=False, width=64)
small = arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)),
               elements=floats)


@st.composite
def same_shape_pair(draw):
    shape = draw(st.tuples(st.integers(1, 4), st.integers(1, 4)))
    a = draw(arrays(np.float64, shape, elements=floats))
    b = draw(arrays(np.float64, shape, elements=floats))
    return a, b


@given(same_shape_pair())
def test_addition_commutes(pair):
    a, b = pair
    np.testing.assert_array_equal((Tensor(a) + Tensor(b)).data,
                                  (Tensor(b) + Tensor(a)).data)


@given(small)
def test_double_negation(a):
    np.testing.assert_array_equal((-(-Tensor(a))).data, a)


@given(small)
def test_tanh_bounded(a):
    out = tanh(Tensor(a)).data
    assert (np.abs(out) <= 1.0).all()


@given(arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(2, 5)),
              elements=floats))
def test_softmax_is_distribution(a):
    out = softmax(Tensor(a)).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=-1), 1.0)


@given(small)
@settings(max_examples=50)
def test_sum_gradient_is_ones(a):
    t = Tensor(a, requires_grad=True)
    t.sum().backward()
    np.testing.assert_array_equal(t.grad, np.ones_like(a))


@given(small, st.floats(0.1, 5.0))
@settings(max_examples=50)
def test_scaling_scales_gradient(a, k):
    t = Tensor(a, requires_grad=True)
    (t * k).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(a, k))


@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
def test_unbroadcast_inverts_broadcast(i, j, k):
    shape = (i, 1, k)
    grad = np.ones((i, j, k))
    reduced = unbroadcast(grad, shape)
    assert reduced.shape == shape
    assert (reduced == j).all()


@given(small)
@settings(max_examples=30)
def test_backward_deterministic(a):
    def run():
        t = Tensor(a, requires_grad=True)
        ((t * 2 + 1) ** 2).sum().backward()
        return t.grad
    np.testing.assert_array_equal(run(), run())
