"""Finite-difference validation of every analytic gradient."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    check_gradients,
    concat,
    embedding_lookup,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    stack,
    tanh,
    where,
)


def leaf(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestArithmeticGradients:
    def test_add(self, rng):
        a, b = leaf(rng, 3, 2), leaf(rng, 3, 2)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast(self, rng):
        a, b = leaf(rng, 3, 2), leaf(rng, 2)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_mul(self, rng):
        a, b = leaf(rng, 4), leaf(rng, 4)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast(self, rng):
        a, b = leaf(rng, 2, 3), leaf(rng, 1, 3)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = leaf(rng, 3)
        b = Tensor(rng.uniform(0.5, 2.0, size=3), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=4), requires_grad=True)
        check_gradients(lambda: (a ** 3).sum(), [a])

    def test_neg_sub(self, rng):
        a, b = leaf(rng, 3), leaf(rng, 3)
        check_gradients(lambda: (a - b).sum(), [a, b])


class TestMatmulGradients:
    def test_2d_2d(self, rng):
        a, b = leaf(rng, 3, 4), leaf(rng, 4, 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_3d_2d(self, rng):
        a, b = leaf(rng, 2, 3, 4), leaf(rng, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_1d_2d(self, rng):
        a, b = leaf(rng, 4), leaf(rng, 4, 3)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_2d_1d(self, rng):
        a, b = leaf(rng, 3, 4), leaf(rng, 4)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_1d_1d(self, rng):
        a, b = leaf(rng, 4), leaf(rng, 4)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_3d_3d(self, rng):
        a, b = leaf(rng, 2, 3, 4), leaf(rng, 2, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])


class TestShapeGradients:
    def test_reshape(self, rng):
        a = leaf(rng, 2, 6)
        check_gradients(lambda: (a.reshape(3, 4) * 2).sum(), [a])

    def test_transpose(self, rng):
        a = leaf(rng, 2, 3, 4)
        check_gradients(lambda: (a.transpose(2, 0, 1) ** 2).sum(), [a])

    def test_getitem_slice(self, rng):
        a = leaf(rng, 4, 5)
        check_gradients(lambda: (a[1:3, :2] ** 2).sum(), [a])

    def test_getitem_int(self, rng):
        a = leaf(rng, 4, 5)
        check_gradients(lambda: (a[2] ** 2).sum(), [a])

    def test_sum_axis(self, rng):
        a = leaf(rng, 3, 4)
        check_gradients(lambda: (a.sum(axis=1) ** 2).sum(), [a])

    def test_mean_axis(self, rng):
        a = leaf(rng, 3, 4)
        check_gradients(lambda: (a.mean(axis=0) ** 2).sum(), [a])

    def test_max(self, rng):
        # Perturb-safe: values spaced so eps never flips the argmax.
        a = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 1.0, 3.0]]),
                   requires_grad=True)
        check_gradients(lambda: (a.max(axis=1) ** 2).sum(), [a])

    def test_clip_interior(self, rng):
        a = Tensor(np.array([0.2, 0.5, 0.7]), requires_grad=True)
        check_gradients(lambda: (a.clip(0.0, 1.0) ** 2).sum(), [a])


class TestActivationGradients:
    def test_tanh(self, rng):
        a = leaf(rng, 3, 3)
        check_gradients(lambda: tanh(a).sum(), [a])

    def test_relu_away_from_kink(self, rng):
        a = Tensor(rng.normal(size=(3, 3)) + 2.0, requires_grad=True)
        check_gradients(lambda: relu(a).sum(), [a])

    def test_sigmoid(self, rng):
        a = leaf(rng, 4)
        check_gradients(lambda: sigmoid(a).sum(), [a])

    def test_exp_log(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=4), requires_grad=True)
        check_gradients(lambda: a.exp().sum() + a.log().sum(), [a])

    def test_softmax(self, rng):
        a = leaf(rng, 2, 5)
        weights = Tensor(rng.normal(size=(2, 5)))
        check_gradients(lambda: (softmax(a) * weights).sum(), [a])

    def test_log_softmax(self, rng):
        a = leaf(rng, 2, 5)
        weights = Tensor(rng.normal(size=(2, 5)))
        check_gradients(lambda: (log_softmax(a) * weights).sum(), [a])


class TestStructuralGradients:
    def test_embedding(self, rng):
        weights = leaf(rng, 6, 3)
        idx = np.array([[0, 2], [5, 2]])
        check_gradients(lambda: (embedding_lookup(weights, idx) ** 2).sum(),
                        [weights])

    def test_concat(self, rng):
        a, b = leaf(rng, 2, 3), leaf(rng, 2, 2)
        check_gradients(lambda: (concat([a, b]) ** 2).sum(), [a, b])

    def test_stack(self, rng):
        a, b = leaf(rng, 3), leaf(rng, 3)
        check_gradients(lambda: (stack([a, b], axis=0) ** 2).sum(), [a, b])

    def test_where(self, rng):
        a, b = leaf(rng, 4), leaf(rng, 4)
        cond = np.array([True, False, True, False])
        check_gradients(lambda: (where(cond, a, b) ** 2).sum(), [a, b])

    def test_composed_expression(self, rng):
        a, b = leaf(rng, 3, 4), leaf(rng, 4, 2)
        c = leaf(rng, 2)
        check_gradients(
            lambda: (tanh(a @ b) * c).mean() + sigmoid(a).sum() * 0.1,
            [a, b, c])
