"""End-to-end determinism: same seed, same bits, on every backend.

Runs a tiny train -> predict -> metrics cycle twice from the same seed
and asserts byte-identical weights, probabilities and detection metrics
-- once per compute backend -- plus the serial-vs-parallel experiment
runner equality (scheduling must not leak into results).
"""

import numpy as np
import pytest

from repro import telemetry
from repro.datasets import load
from repro.experiments import run_experiment
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.nn.backend import reset_backend, use_backend

TINY = ModelConfig(char_embed_dim=6, value_units=5, num_layers=1,
                   attr_embed_dim=3, attr_units=3, length_dense_units=4,
                   head_units=4)


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    reset_backend()


@pytest.fixture(scope="module")
def pair():
    return load("hospital", n_rows=40, seed=4)


def _full_cycle(pair, seed=0):
    """One train -> predict -> metrics cycle; returns everything bit-level."""
    detector = ErrorDetector(n_label_tuples=6, model_config=TINY,
                             training_config=TrainingConfig(epochs=2),
                             seed=seed)
    detector.fit(pair)
    result = detector.evaluate()
    split = detector.split
    probabilities = detector.trainer.predict_proba(
        split.test.features, lengths=split.test.lengths,
        dedup=split.test.dedup)
    weights = {name: np.array(value, copy=True)
               for name, value in detector.model.state_dict().items()}
    return weights, probabilities, result


class TestSameSeedSameBits:
    @pytest.mark.parametrize("backend", ["fused", "graph"])
    def test_cycle_repeats_byte_identically(self, pair, backend):
        with use_backend(backend):
            weights_a, probs_a, result_a = _full_cycle(pair)
            weights_b, probs_b, result_b = _full_cycle(pair)
        assert sorted(weights_a) == sorted(weights_b)
        for name in weights_a:
            assert weights_a[name].tobytes() == weights_b[name].tobytes(), \
                f"weight {name!r} differs between identical runs"
        assert probs_a.tobytes() == probs_b.tobytes()
        assert result_a.report == result_b.report
        np.testing.assert_array_equal(result_a.predictions,
                                      result_b.predictions)
        assert result_a.inference.as_dict() == result_b.inference.as_dict()

    def test_different_seeds_actually_differ(self, pair):
        """Guards against the cycle ignoring its seed entirely."""
        weights_a, _, _ = _full_cycle(pair, seed=0)
        weights_b, _, _ = _full_cycle(pair, seed=1)
        assert any(weights_a[name].tobytes() != weights_b[name].tobytes()
                   for name in weights_a)

    def test_telemetry_does_not_perturb_results(self, pair):
        """Observability must be read-only: same bits with telemetry on."""
        _, probs_plain, result_plain = _full_cycle(pair)
        with telemetry.use_telemetry(telemetry.MetricsRegistry()):
            _, probs_traced, result_traced = _full_cycle(pair)
        assert probs_plain.tobytes() == probs_traced.tobytes()
        assert result_plain.report == result_traced.report


class TestRunnerScheduleEquality:
    SETTINGS = dict(n_runs=2, n_label_tuples=6, epochs=2, model_config=TINY)

    def test_serial_and_parallel_runs_match(self, pair):
        serial = run_experiment(pair, **self.SETTINGS)
        parallel = run_experiment(pair, **self.SETTINGS, n_workers=2)
        assert len(serial.runs) == len(parallel.runs)
        for run_s, run_p in zip(serial.runs, parallel.runs):
            assert run_s.seed == run_p.seed
            assert run_s.report == run_p.report
            assert run_s.best_epoch == run_p.best_epoch
            assert run_s.unique_cell_ratio == run_p.unique_cell_ratio
            assert run_s.cache_hits == run_p.cache_hits
            assert run_s.cache_misses == run_p.cache_misses

    def test_telemetry_counters_are_schedule_independent(self, pair):
        """Counters merged across workers equal the serial ones exactly
        (timings aside -- wall clocks are the one legitimate difference)."""
        with telemetry.use_telemetry(telemetry.MetricsRegistry()):
            serial = run_experiment(pair, **self.SETTINGS)
        with telemetry.use_telemetry(telemetry.MetricsRegistry()):
            parallel = run_experiment(pair, **self.SETTINGS, n_workers=2)
        merged_s = serial.merged_telemetry
        merged_p = parallel.merged_telemetry
        assert merged_s is not None and merged_p is not None
        assert merged_s["counters"] == merged_p["counters"]
        assert merged_s["gauges"]["train.loss"] == \
            merged_p["gauges"]["train.loss"]
        per_run = [run.telemetry["counters"] for run in parallel.runs]
        assert all(c["train.epochs"] == self.SETTINGS["epochs"]
                   for c in per_run)
