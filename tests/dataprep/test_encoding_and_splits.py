"""Tests for cell encoding and tuple-id splitting."""

import numpy as np
import pytest

from repro.dataprep import encode_cells, prepare, split_by_tuple_ids
from repro.errors import DataError
from repro.table import Table


@pytest.fixture
def prepared(paper_example):
    dirty, clean = paper_example
    return prepare(dirty, clean)


class TestEncodeCells:
    def test_feature_shapes(self, prepared):
        encoded = encode_cells(prepared)
        n = prepared.df.n_rows
        assert encoded.features["values"].shape == (n, prepared.max_length)
        assert encoded.features["attributes"].shape == (n,)
        assert encoded.features["length_norm"].shape == (n, 1)
        assert encoded.labels.shape == (n,)

    def test_values_decode_back(self, prepared):
        encoded = encode_cells(prepared)
        for i, row in enumerate(prepared.df.iter_rows()):
            decoded = prepared.char_index.decode(encoded.features["values"][i])
            assert decoded == row["value_x"]

    def test_attribute_indices_valid(self, prepared):
        encoded = encode_cells(prepared)
        for i, row in enumerate(prepared.df.iter_rows()):
            assert (encoded.features["attributes"][i]
                    == prepared.attribute_index.index_of(row["attribute"]))

    def test_labels_are_binary(self, prepared):
        encoded = encode_cells(prepared)
        assert set(np.unique(encoded.labels)) <= {0, 1}

    def test_tuple_ids_recorded(self, prepared):
        encoded = encode_cells(prepared)
        assert set(encoded.tuple_ids.tolist()) == {0, 1, 2, 3, 4}

    def test_subset(self, prepared):
        encoded = encode_cells(prepared)
        sub = encoded.subset(np.array([0, 2]))
        assert sub.n_cells == 2
        assert sub.attribute_names == (encoded.attribute_names[0],
                                       encoded.attribute_names[2])

    def test_lengths_match_values(self, prepared):
        encoded = encode_cells(prepared)
        assert encoded.lengths is not None
        assert encoded.lengths.shape == encoded.labels.shape
        assert encoded.lengths.dtype == np.int64
        for i, row in enumerate(prepared.df.iter_rows()):
            assert encoded.lengths[i] == len(row["value_x"])
        # The length is exactly the non-pad prefix of the padded row.
        values = encoded.features["values"]
        for i, ell in enumerate(encoded.lengths):
            assert (values[i, :ell] != 0).all()
            assert (values[i, ell:] == 0).all()

    def test_subset_slices_lengths(self, prepared):
        encoded = encode_cells(prepared)
        sub = encoded.subset(np.array([1, 3]))
        np.testing.assert_array_equal(sub.lengths, encoded.lengths[[1, 3]])

    def test_subset_is_python_loop_free(self, prepared):
        """Micro-assertion: subset never iterates the indices in Python.

        The index array refuses Python-level iteration, so any per-row
        comprehension over it (the pre-vectorisation implementation)
        fails immediately; numpy gathers go through the buffer instead.
        """

        class NoPythonIter(np.ndarray):
            def __iter__(self):
                raise AssertionError(
                    "subset iterated its indices in a Python loop")

        encoded = encode_cells(prepared)
        indices = np.array([0, 2, 3]).view(NoPythonIter)
        sub = encoded.subset(indices)
        assert sub.n_cells == 3
        assert sub.attribute_names == tuple(encoded.attribute_names[i]
                                            for i in (0, 2, 3))

    def test_subset_attribute_names_stay_strings(self, prepared):
        encoded = encode_cells(prepared)
        sub = encoded.subset(np.array([1, 2]))
        assert all(isinstance(name, str) for name in sub.attribute_names)

    def test_encode_cells_builds_dedup_index(self, prepared):
        encoded = encode_cells(prepared)
        assert encoded.dedup is not None
        assert encoded.dedup.n_rows == encoded.n_cells
        # scattering representative rows reconstructs every feature array
        for arr in encoded.features.values():
            np.testing.assert_array_equal(
                encoded.dedup.scatter(arr[encoded.dedup.representatives]),
                arr)

    def test_subset_renumbers_dedup(self, prepared):
        encoded = encode_cells(prepared)
        sub = encoded.subset(np.array([0, 1, 3]))
        assert sub.dedup is not None
        assert sub.dedup.n_rows == 3
        assert sub.dedup.n_unique <= 3

    def test_missing_column_rejected(self, prepared):
        broken = prepared.df.drop(["label"])
        with pytest.raises(DataError):
            encode_cells(prepared, df=broken)


class TestSplitByTupleIds:
    def test_sizes(self, prepared):
        split = split_by_tuple_ids(prepared, [0, 2])
        assert split.train_size == 2 * 4  # tuples x attributes
        assert split.test_size == 3 * 4

    def test_no_leakage(self, prepared):
        split = split_by_tuple_ids(prepared, [0, 2])
        assert set(split.train.tuple_ids.tolist()) == {0, 2}
        assert set(split.test.tuple_ids.tolist()) == {1, 3, 4}

    def test_paper_sizes_example(self):
        """Section 5.2: Beers = 20 tuples x 11 attrs train, rest test."""
        n_rows, n_attrs = 50, 11
        dirty = Table({f"c{j}": [f"v{i}" for i in range(n_rows)]
                       for j in range(n_attrs)})
        prepared = prepare(dirty, dirty)
        split = split_by_tuple_ids(prepared, list(range(20)))
        assert split.train_size == 20 * n_attrs
        assert split.test_size == (n_rows - 20) * n_attrs

    def test_empty_ids_rejected(self, prepared):
        with pytest.raises(DataError):
            split_by_tuple_ids(prepared, [])

    def test_duplicate_ids_rejected(self, prepared):
        with pytest.raises(DataError):
            split_by_tuple_ids(prepared, [0, 0])

    def test_unknown_ids_rejected(self, prepared):
        with pytest.raises(DataError, match="99"):
            split_by_tuple_ids(prepared, [0, 99])

    def test_all_tuples_in_train_rejected(self, prepared):
        with pytest.raises(DataError, match="empty"):
            split_by_tuple_ids(prepared, [0, 1, 2, 3, 4])

    def test_train_tuple_ids_preserved_in_order(self, prepared):
        split = split_by_tuple_ids(prepared, [3, 1])
        assert split.train_tuple_ids == (3, 1)

    def test_split_sides_carry_lengths(self, prepared):
        split = split_by_tuple_ids(prepared, [0, 2])
        assert split.train.lengths is not None
        assert split.test.lengths is not None
        assert split.train.lengths.shape[0] == split.train_size
        assert split.test.lengths.shape[0] == split.test_size
