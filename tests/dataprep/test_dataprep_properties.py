"""Property-based tests for the preparation pipeline and samplers."""

import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataprep import encode_cells, prepare, split_by_tuple_ids
from repro.sampling import DiverSet, RandomSet
from repro.table import Table

cell_text = st.text(string.ascii_lowercase + string.digits + " .,-", max_size=10)


@st.composite
def table_pairs(draw):
    """A (dirty, clean) pair of random string tables with equal shape."""
    n_cols = draw(st.integers(1, 4))
    n_rows = draw(st.integers(2, 8))
    names = [f"c{i}" for i in range(n_cols)]
    clean = {name: draw(st.lists(cell_text, min_size=n_rows, max_size=n_rows))
             for name in names}
    dirty = {
        name: [
            draw(cell_text) if draw(st.booleans()) else clean[name][i]
            for i in range(n_rows)
        ]
        for name in names
    }
    return Table(dirty), Table(clean)


@given(table_pairs())
@settings(max_examples=40, deadline=None)
def test_prepare_cell_count(pair):
    dirty, clean = pair
    prepared = prepare(dirty, clean)
    assert prepared.df.n_rows == dirty.n_rows * dirty.n_cols


@given(table_pairs())
@settings(max_examples=40, deadline=None)
def test_labels_iff_values_differ(pair):
    dirty, clean = pair
    prepared = prepare(dirty, clean)
    for row in prepared.df.iter_rows():
        assert row["label"] == (0 if row["value_x"] == row["value_y"] else 1)


@given(table_pairs())
@settings(max_examples=40, deadline=None)
def test_encoding_decodes_to_value(pair):
    dirty, clean = pair
    prepared = prepare(dirty, clean)
    encoded = encode_cells(prepared)
    for i, row in enumerate(prepared.df.iter_rows()):
        assert prepared.char_index.decode(
            encoded.features["values"][i]) == row["value_x"]


@given(table_pairs())
@settings(max_examples=40, deadline=None)
def test_length_norm_in_unit_interval(pair):
    dirty, clean = pair
    prepared = prepare(dirty, clean)
    for row in prepared.df.iter_rows():
        assert 0.0 <= row["length_norm"] <= 1.0


@given(table_pairs(), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_diverset_invariants(pair, seed):
    dirty, clean = pair
    prepared = prepare(dirty, clean)
    n_obs = min(2, prepared.n_tuples - 1)
    if n_obs < 1:
        return
    ids = DiverSet().select(n_obs, prepared, np.random.default_rng(seed))
    assert len(ids) == n_obs
    assert len(set(ids)) == n_obs
    assert set(ids) <= set(prepared.tuple_ids())


@given(table_pairs(), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_split_partitions_cells(pair, seed):
    dirty, clean = pair
    prepared = prepare(dirty, clean)
    n_obs = min(2, prepared.n_tuples - 1)
    if n_obs < 1:
        return
    ids = RandomSet().select(n_obs, prepared, np.random.default_rng(seed))
    split = split_by_tuple_ids(prepared, ids)
    assert split.train_size + split.test_size == prepared.df.n_rows
    assert set(split.train.tuple_ids).isdisjoint(set(split.test.tuple_ids))
