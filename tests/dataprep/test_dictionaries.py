"""Tests for character and attribute dictionaries."""

import numpy as np
import pytest

from repro.dataprep import AttributeDictionary, CharDictionary
from repro.errors import EncodingError


class TestCharDictionary:
    def test_indices_start_at_one(self):
        d = CharDictionary(["ab"])
        assert d.index_of("a") == 1
        assert d.index_of("b") == 2

    def test_first_occurrence_order(self):
        d = CharDictionary(["ba", "c"])
        assert d.index_of("b") == 1
        assert d.index_of("a") == 2
        assert d.index_of("c") == 3

    def test_sizes(self):
        d = CharDictionary(["abc"])
        assert d.n_chars == 3
        assert d.vocab_size == 4  # + pad

    def test_contains(self):
        d = CharDictionary(["x"])
        assert "x" in d
        assert "y" not in d

    def test_unknown_char_raises(self):
        with pytest.raises(EncodingError):
            CharDictionary(["a"]).index_of("z")

    def test_encode_pads_with_zero(self):
        d = CharDictionary(["ab"])
        np.testing.assert_array_equal(d.encode("ab", 4), [1, 2, 0, 0])

    def test_encode_paper_example(self):
        """Section 4.1: 'e3' in a 10-char dictionary, padded to length 4."""
        d = CharDictionary(["abcd", "e3", "fg", "hi"])
        encoded = d.encode("e3", 4)
        assert encoded[0] == d.index_of("e")
        assert encoded[1] == d.index_of("3")
        assert list(encoded[2:]) == [0, 0]

    def test_encode_too_long_raises(self):
        with pytest.raises(EncodingError, match="exceeds"):
            CharDictionary(["abc"]).encode("abc", 2)

    def test_encode_unknown_error_mode(self):
        with pytest.raises(EncodingError):
            CharDictionary(["a"]).encode("az", 4)

    def test_encode_unknown_skip_mode(self):
        d = CharDictionary(["a"])
        np.testing.assert_array_equal(d.encode("az", 4, unknown="skip"),
                                      [1, 0, 0, 0])

    def test_encode_invalid_mode(self):
        with pytest.raises(EncodingError):
            CharDictionary(["a"]).encode("a", 2, unknown="replace")

    def test_decode_round_trip(self):
        d = CharDictionary(["hello"])
        assert d.decode(d.encode("hello", 8)) == "hello"

    def test_decode_stops_at_pad(self):
        d = CharDictionary(["ab"])
        assert d.decode([1, 0, 2]) == "a"

    def test_decode_unknown_index(self):
        with pytest.raises(EncodingError):
            CharDictionary(["a"]).decode([5])

    def test_char_of_inverse(self):
        d = CharDictionary(["xyz"])
        for char in "xyz":
            assert d.char_of(d.index_of(char)) == char

    def test_empty_corpus_allowed(self):
        d = CharDictionary([])
        assert d.vocab_size == 1
        np.testing.assert_array_equal(d.encode("", 3), [0, 0, 0])


class TestAttributeDictionary:
    def test_indices_start_at_one(self):
        d = AttributeDictionary(["city", "state"])
        assert d.index_of("city") == 1
        assert d.index_of("state") == 2

    def test_vocab_size_includes_pad(self):
        d = AttributeDictionary(["a", "b"])
        assert d.n_attributes == 2
        assert d.vocab_size == 3

    def test_duplicates_ignored(self):
        d = AttributeDictionary(["a", "a", "b"])
        assert d.n_attributes == 2

    def test_unknown_raises(self):
        with pytest.raises(EncodingError):
            AttributeDictionary(["a"]).index_of("z")

    def test_names_in_index_order(self):
        d = AttributeDictionary(["z", "a", "m"])
        assert d.names() == ["z", "a", "m"]

    def test_attribute_of_inverse(self):
        d = AttributeDictionary(["x", "y"])
        assert d.attribute_of(2) == "y"

    def test_empty_rejected(self):
        with pytest.raises(EncodingError):
            AttributeDictionary([])
