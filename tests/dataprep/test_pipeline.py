"""Tests for the Figure 3 data-preparation pipeline."""

import pytest

from repro.dataprep import prepare
from repro.dataprep.pipeline import merge_to_long, structure_transformation
from repro.errors import DataError
from repro.table import Table


class TestStructureTransformation:
    def test_id_column_added(self, paper_example):
        dirty, clean = paper_example
        dirty_t, clean_t = structure_transformation(dirty, clean)
        assert list(dirty_t.column("id_").values) == [0, 1, 2, 3, 4]
        assert list(clean_t.column("id_").values) == [0, 1, 2, 3, 4]

    def test_leading_whitespace_stripped(self):
        dirty = Table({"a": ["  x", "y"]})
        clean = Table({"a": ["x", " y"]})
        dirty_t, clean_t = structure_transformation(dirty, clean)
        assert dirty_t.column("a").values == ("x", "y")
        assert clean_t.column("a").values == ("x", "y")

    def test_trailing_whitespace_kept(self):
        dirty = Table({"a": ["x  "]})
        dirty_t, _ = structure_transformation(dirty, Table({"a": ["x"]}))
        assert dirty_t.column("a")[0] == "x  "

    def test_columns_renamed_positionally(self):
        dirty = Table({"colA": ["1"], "colB": ["2"]})
        clean = Table({"a": ["1"], "b": ["2"]})
        dirty_t, _ = structure_transformation(dirty, clean)
        assert dirty_t.column_names == ["a", "b", "id_"]

    def test_none_becomes_empty_string(self):
        dirty = Table({"a": [None]})
        dirty_t, _ = structure_transformation(dirty, Table({"a": ["x"]}))
        assert dirty_t.column("a")[0] == ""

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            structure_transformation(Table({"a": ["1"]}),
                                     Table({"a": ["1", "2"]}))

    def test_existing_id_column_rejected(self):
        table = Table({"id_": ["1"], "a": ["2"]})
        with pytest.raises(DataError):
            structure_transformation(table, table)


class TestMergeToLong:
    def test_long_format_shape(self, paper_example):
        dirty, clean = paper_example
        dirty_t, clean_t = structure_transformation(dirty, clean)
        df = merge_to_long(dirty_t, clean_t)
        assert df.n_rows == 5 * 4  # tuples x attributes

    def test_labels_match_table1(self, paper_example):
        """The highlighted cells of Table 1 must be labelled 1."""
        dirty, clean = paper_example
        prepared = prepare(dirty, clean)
        errors = {
            (row["id_"], row["attribute"])
            for row in prepared.df.iter_rows() if row["label"] == 1
        }
        assert errors == {
            (0, "Sal"), (0, "City"),        # '80,000', 'NaN'
            (1, "City"),                    # 'Romr'
            (3, "A"), (3, "ZIP"),           # '12', 'BER'
            (4, "Sal"), (4, "ZIP"),         # '850', '75000'
        }

    def test_empty_flag(self):
        dirty = Table({"a": ["", "x"]})
        clean = Table({"a": ["y", "x"]})
        prepared = prepare(dirty, clean)
        by_id = {r["id_"]: r["empty"] for r in prepared.df.iter_rows()}
        assert by_id == {0: 1, 1: 0}

    def test_concat_column(self, paper_example):
        dirty, clean = paper_example
        prepared = prepare(dirty, clean)
        first = prepared.df.row(0)
        assert first["concat"] == f"{first['attribute']}__{first['value_x']}"

    def test_length_norm_is_ratio_per_attribute(self):
        dirty = Table({"a": ["xx", "xxxx"], "b": ["y", "y"]})
        prepared = prepare(dirty, dirty)
        ratios = {
            (r["attribute"], r["id_"]): r["length_norm"]
            for r in prepared.df.iter_rows()
        }
        assert ratios[("a", 0)] == 0.5
        assert ratios[("a", 1)] == 1.0
        assert ratios[("b", 0)] == 1.0

    def test_length_norm_zero_for_all_empty_attribute(self):
        dirty = Table({"a": ["", ""], "b": ["x", "y"]})
        prepared = prepare(dirty, dirty)
        a_rows = [r for r in prepared.df.iter_rows() if r["attribute"] == "a"]
        assert all(r["length_norm"] == 0.0 for r in a_rows)

    def test_truncation_at_max_length(self):
        dirty = Table({"a": ["x" * 200]})
        prepared = prepare(dirty, dirty, max_value_length=128)
        assert len(prepared.df.row(0)["value_x"]) == 128

    def test_truncation_can_mask_errors(self):
        """Values differing only beyond the cut become label 0 -- the
        paper's 'cut them off' trade-off."""
        dirty = Table({"a": ["x" * 128 + "A"]})
        clean = Table({"a": ["x" * 128 + "B"]})
        prepared = prepare(dirty, clean)
        assert prepared.df.row(0)["label"] == 0


class TestPrepare:
    def test_prepared_metadata(self, paper_example):
        dirty, clean = paper_example
        prepared = prepare(dirty, clean)
        assert prepared.attributes == ("A", "Sal", "ZIP", "City")
        assert prepared.n_tuples == 5
        assert prepared.max_length == max(
            len(r["value_x"]) for r in prepared.df.iter_rows())

    def test_char_index_covers_dirty_values(self, paper_example):
        dirty, clean = paper_example
        prepared = prepare(dirty, clean)
        for row in prepared.df.iter_rows():
            for char in row["value_x"]:
                assert char in prepared.char_index

    def test_attribute_index_covers_attributes(self, paper_example):
        dirty, clean = paper_example
        prepared = prepare(dirty, clean)
        for name in prepared.attributes:
            assert name in prepared.attribute_index

    def test_tuple_ids_order(self, paper_example):
        dirty, clean = paper_example
        prepared = prepare(dirty, clean)
        assert prepared.tuple_ids() == [0, 1, 2, 3, 4]

    def test_invalid_max_length_rejected(self, paper_example):
        dirty, clean = paper_example
        with pytest.raises(DataError):
            prepare(dirty, clean, max_value_length=0)
