"""Golden-file regression gate: exact metrics for every dataset x arch.

Any unintended numeric drift (encoding, init, training order, inference)
flips at least one committed metric.  If a change is *intentional*,
regenerate with ``python tests/golden/update_golden.py`` and commit the
diff — the review then shows exactly which cells moved.
"""

import json

import pytest

from tests.golden.update_golden import (
    GOLDEN_PATH,
    SYSTEMS,
    compute_cell,
)

GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

CELLS = sorted(GOLDEN["metrics"])


def test_golden_covers_full_grid():
    from repro.datasets import DATASET_NAMES

    expected = {f"{d}/{s}" for d in DATASET_NAMES for s in SYSTEMS}
    assert set(CELLS) == expected


@pytest.mark.parametrize("cell", CELLS)
def test_metrics_match_golden(cell):
    dataset, system = cell.split("/")
    assert compute_cell(dataset, system) == GOLDEN["metrics"][cell], (
        f"metrics drifted for {cell}; if intentional, regenerate with "
        "`python tests/golden/update_golden.py` and commit the diff")
