"""Regenerate ``golden_metrics.json`` — the committed reference metrics.

Run after any change that intentionally shifts numerics::

    PYTHONPATH=src:. python tests/golden/update_golden.py

The golden cells are deliberately tiny (40 rows, 2 epochs, TINY model)
so the full 6-dataset x 2-architecture grid regenerates in seconds, yet
any unintended change to encoding, initialisation, training order or
inference flips at least one exact metric.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.datasets import DATASET_NAMES, load
from repro.models import ErrorDetector, ModelConfig, TrainingConfig

GOLDEN_PATH = Path(__file__).with_name("golden_metrics.json")

ARCHITECTURES = ("tsb", "etsb")
N_ROWS = 40
SEED = 0
TINY = ModelConfig(char_embed_dim=6, value_units=8, attr_embed_dim=3,
                   attr_units=3, length_dense_units=6, head_units=8)
TRAINING = TrainingConfig(epochs=2)


def compute_cell(dataset: str, architecture: str) -> dict:
    """Exact test-set metrics for one (dataset, architecture) cell."""
    pair = load(dataset, n_rows=N_ROWS, seed=SEED)
    detector = ErrorDetector(architecture=architecture, n_label_tuples=6,
                             model_config=TINY, training_config=TRAINING,
                             seed=SEED)
    detector.fit(pair)
    return asdict(detector.evaluate().report)


def compute_golden() -> dict:
    return {
        "config": {
            "n_rows": N_ROWS, "seed": SEED, "n_label_tuples": 6,
            "epochs": TRAINING.epochs, "model_config": asdict(TINY),
        },
        "metrics": {
            f"{dataset}/{architecture}": compute_cell(dataset, architecture)
            for dataset in DATASET_NAMES
            for architecture in ARCHITECTURES
        },
    }


def main() -> None:
    golden = compute_golden()
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n",
                           encoding="utf-8")
    print(f"wrote {len(golden['metrics'])} cells to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
