"""Regenerate ``golden_metrics.json`` — the committed reference metrics.

Run after any change that intentionally shifts numerics::

    PYTHONPATH=src:. python tests/golden/update_golden.py

The golden cells are deliberately tiny (40 rows, 2 epochs, TINY model)
so the full 6-dataset x 2-architecture grid regenerates in seconds, yet
any unintended change to encoding, initialisation, training order or
inference flips at least one exact metric.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.datasets import DATASET_NAMES, load
from repro.models import ErrorDetector, ModelConfig, TrainingConfig

GOLDEN_PATH = Path(__file__).with_name("golden_metrics.json")

ARCHITECTURES = ("tsb", "etsb", "attn")
#: All golden systems: the neural grid plus the fused ensemble.  The
#: augmentation baseline is deliberately absent -- its hashed n-gram
#: features ride on the per-process ``hash()`` salt, so its metrics are
#: process-local and can never be golden.
SYSTEMS = ARCHITECTURES + ("ensemble",)
N_ROWS = 40
SEED = 0
TINY = ModelConfig(char_embed_dim=6, value_units=8, attr_embed_dim=3,
                   attr_units=3, length_dense_units=6, head_units=8,
                   attn_dim=6)
TRAINING = TrainingConfig(epochs=2)


def _compute_ensemble_cell(dataset: str) -> dict:
    """Exact comparison-protocol metrics for the tiny fused ensemble."""
    from repro.experiments.comparison import run_detector_comparison

    pair = load(dataset, n_rows=N_ROWS, seed=SEED)
    neural = {"model_config": asdict(TINY),
              "training_config": asdict(TRAINING), "n_label_tuples": 6}
    results = run_detector_comparison(
        pair, detectors=("ensemble",), n_runs=1, n_label_tuples=6,
        base_seed=SEED,
        detector_configs={"ensemble": {
            "members": [("etsb", neural), ("raha", {"n_label_tuples": 6})],
            "n_label_tuples": 6}})
    return asdict(results["ensemble"].runs[0].report)


def compute_cell(dataset: str, system: str) -> dict:
    """Exact test-set metrics for one (dataset, system) cell."""
    if system == "ensemble":
        return _compute_ensemble_cell(dataset)
    pair = load(dataset, n_rows=N_ROWS, seed=SEED)
    detector = ErrorDetector(architecture=system, n_label_tuples=6,
                             model_config=TINY, training_config=TRAINING,
                             seed=SEED)
    detector.fit(pair)
    return asdict(detector.evaluate().report)


def compute_golden() -> dict:
    return {
        "config": {
            "n_rows": N_ROWS, "seed": SEED, "n_label_tuples": 6,
            "epochs": TRAINING.epochs, "model_config": asdict(TINY),
        },
        "metrics": {
            f"{dataset}/{system}": compute_cell(dataset, system)
            for dataset in DATASET_NAMES
            for system in SYSTEMS
        },
    }


def main() -> None:
    golden = compute_golden()
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n",
                           encoding="utf-8")
    print(f"wrote {len(golden['metrics'])} cells to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
