"""Tests for the three trainset-selection algorithms."""

import numpy as np
import pytest

from repro.dataprep import prepare
from repro.errors import SamplingError
from repro.sampling import DiverSet, RahaSet, RandomSet
from repro.sampling.raha_set import dirty_wide_view
from repro.table import Table


@pytest.fixture
def prepared(paper_example):
    dirty, clean = paper_example
    return prepare(dirty, clean)


@pytest.fixture
def figure4_prepared():
    """The running example of Figure 3/4: 3 tuples x 3 attributes.

    Tuple 0 has an empty attr3 value; tuples 1 and 2 share no values
    with tuple 0.
    """
    dirty = Table({
        "attr1": ["a1", "b1", "c1"],
        "attr2": ["e3", "b2", "c2"],
        "attr3": ["", "b3", "c3"],
    })
    return prepare(dirty, dirty)


class TestRandomSet:
    def test_returns_requested_count(self, prepared, rng):
        assert len(RandomSet().select(3, prepared, rng)) == 3

    def test_ids_distinct_and_valid(self, prepared, rng):
        ids = RandomSet().select(4, prepared, rng)
        assert len(set(ids)) == 4
        assert set(ids) <= {0, 1, 2, 3, 4}

    def test_deterministic_given_seed(self, prepared):
        a = RandomSet().select(3, prepared, np.random.default_rng(7))
        b = RandomSet().select(3, prepared, np.random.default_rng(7))
        assert a == b

    def test_different_seeds_differ(self, prepared):
        draws = {
            tuple(RandomSet().select(3, prepared, np.random.default_rng(s)))
            for s in range(20)
        }
        assert len(draws) > 1

    def test_n_obs_validation(self, prepared, rng):
        with pytest.raises(SamplingError):
            RandomSet().select(0, prepared, rng)
        with pytest.raises(SamplingError):
            RandomSet().select(6, prepared, rng)


class TestDiverSet:
    def test_figure4_first_pick_is_tuple_zero(self, figure4_prepared, rng):
        """Tuple 0 wins the first round via the empty-value tie-break."""
        ids = DiverSet().select(1, figure4_prepared, rng)
        assert ids == [0]

    def test_figure4_two_picks(self, figure4_prepared):
        """Second pick is tuple 1 or 2 (random tie-break), never 0 again."""
        for seed in range(10):
            ids = DiverSet().select(2, figure4_prepared,
                                    np.random.default_rng(seed))
            assert ids[0] == 0
            assert ids[1] in (1, 2)

    def test_prefers_unseen_values(self):
        """A tuple duplicating seen values loses to one with fresh values."""
        dirty = Table({
            "a": ["x", "x", "q"],
            "b": ["y", "y", "r"],
            "c": ["", "z", "s"],
        })
        prepared = prepare(dirty, dirty)
        ids = DiverSet().select(2, prepared, np.random.default_rng(0))
        # After picking tuple 0 (empty tie-break), tuple 1 has only one
        # unseen value ('z') while tuple 2 has three.
        assert ids[0] == 0
        assert ids[1] == 2

    def test_exhausted_values_falls_back_to_random(self):
        """All-identical tuples: every id still gets selected exactly once."""
        dirty = Table({"a": ["x"] * 4, "b": ["y"] * 4})
        prepared = prepare(dirty, dirty)
        ids = DiverSet().select(3, prepared, np.random.default_rng(0))
        assert len(set(ids)) == 3

    def test_no_duplicates(self, prepared, rng):
        ids = DiverSet().select(4, prepared, rng)
        assert len(set(ids)) == 4

    def test_deterministic_given_seed(self, prepared):
        a = DiverSet().select(3, prepared, np.random.default_rng(3))
        b = DiverSet().select(3, prepared, np.random.default_rng(3))
        assert a == b

    def test_does_not_use_labels(self, paper_example):
        """Same dirty data with different clean data gives the same sample."""
        dirty, clean = paper_example
        sample_with_clean = DiverSet().select(
            3, prepare(dirty, clean), np.random.default_rng(0))
        sample_self = DiverSet().select(
            3, prepare(dirty, dirty), np.random.default_rng(0))
        assert sample_with_clean == sample_self

    def test_validation(self, prepared, rng):
        with pytest.raises(SamplingError):
            DiverSet().select(99, prepared, rng)


class TestRahaSet:
    def test_returns_requested_count(self, prepared, rng):
        assert len(RahaSet().select(3, prepared, rng)) == 3

    def test_ids_valid_and_distinct(self, prepared, rng):
        ids = RahaSet().select(3, prepared, rng)
        assert len(set(ids)) == 3
        assert set(ids) <= {0, 1, 2, 3, 4}

    def test_deterministic_given_seed(self, prepared):
        a = RahaSet().select(3, prepared, np.random.default_rng(5))
        b = RahaSet().select(3, prepared, np.random.default_rng(5))
        assert a == b

    def test_validation(self, prepared, rng):
        with pytest.raises(SamplingError):
            RahaSet().select(0, prepared, rng)


class TestDirtyWideView:
    def test_reconstructs_dirty_table(self, paper_example):
        dirty, clean = paper_example
        prepared = prepare(dirty, clean)
        wide = dirty_wide_view(prepared)
        assert wide.column_names == ["A", "Sal", "ZIP", "City"]
        assert wide.n_rows == 5
        assert wide.column("City").values == (
            "NaN", "Romr", "Paris", "Berlin", "Vienna")

    def test_never_exposes_clean_values(self, paper_example):
        dirty, clean = paper_example
        wide = dirty_wide_view(prepare(dirty, clean))
        assert "Rome" not in wide.column("City").values
