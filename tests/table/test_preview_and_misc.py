"""Additional table-substrate coverage: preview, unicode CSV, outer joins."""

import pytest

from repro.table import Table, read_csv, write_csv


class TestPreview:
    def test_empty_table_preview(self):
        text = Table({"a": []}).preview()
        assert "a" in text

    def test_none_rendered(self):
        text = Table({"a": [None]}).preview()
        assert "None" in text

    def test_exact_fit_no_ellipsis(self):
        text = Table({"a": [1, 2]}).preview(2)
        assert "more rows" not in text


class TestUnicodeCsv:
    def test_unicode_round_trip(self, tmp_path):
        table = Table({"city": ["Zürich", "東京", "Genève"]})
        path = tmp_path / "u.csv"
        write_csv(table, path)
        assert read_csv(path) == table

    def test_newlines_in_cells_quoted(self, tmp_path):
        table = Table({"text": ["line1\nline2", "plain"]})
        path = tmp_path / "n.csv"
        write_csv(table, path)
        assert read_csv(path).column("text")[0] == "line1\nline2"


class TestOuterJoinMultiKey:
    def test_none_in_one_key_component(self):
        left = Table({"a": [1, None], "b": ["x", "y"], "v": ["l1", "l2"]})
        right = Table({"a": [1, None], "b": ["x", "y"], "w": ["r1", "r2"]})
        out = left.merge(right, on=["a", "b"], how="outer")
        assert out.n_rows == 2  # None-containing keys still match exactly

    def test_fully_disjoint_outer(self):
        left = Table({"k": [1], "v": ["a"]})
        right = Table({"k": [2], "w": ["b"]})
        out = left.merge(right, on="k", how="outer")
        assert out.n_rows == 2
        rows = {r["k"]: r for r in out.iter_rows()}
        assert rows[1]["w"] is None
        assert rows[2]["v"] is None


class TestGroupsSubTables:
    def test_groups_yield_row_subsets(self):
        table = Table({"k": ["a", "b", "a"], "v": [1, 2, 3]})
        groups = dict()
        for key, sub in table.groupby("k").groups():
            groups[key] = list(sub.column("v").values)
        assert groups == {("a",): [1, 3], ("b",): [2]}
