"""Property tests: hash join and groupby against brute-force oracles.

The paper's pipeline hinges on the long-format merge on
``(id_, attribute)`` (Figure 3) producing ``value_x`` / ``value_y``.
These properties check :func:`repro.table.join.merge_tables` and
:meth:`GroupBy.agg` against transparent nested-loop / dict oracles over
arbitrary generated tables: duplicate keys, ``None`` keys, unmatched
rows on either side.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.table import Table

key_cell = st.one_of(st.none(), st.integers(0, 4),
                     st.sampled_from(["a", "b", "c"]))
value_cell = st.one_of(st.none(), st.integers(-50, 50),
                       st.text(string.ascii_lowercase, max_size=4))


@st.composite
def keyed_tables(draw, max_rows=8):
    """A pair of tables sharing key columns (id_, attribute) and an
    overlapping non-key column ``value`` -- the paper's merge shape."""
    def one(n):
        return Table({
            "id_": draw(st.lists(key_cell, min_size=n, max_size=n)),
            "attribute": draw(st.lists(key_cell, min_size=n, max_size=n)),
            "value": draw(st.lists(value_cell, min_size=n, max_size=n)),
        })
    left = one(draw(st.integers(0, max_rows)))
    right = one(draw(st.integers(0, max_rows)))
    return left, right


def oracle_merge(left, right, on, how):
    """Nested-loop join emitting rows in the documented order: left row
    order, right matches in right-table order, then (outer) unmatched
    right rows in right-table order."""
    lrows = left.to_rows()
    rrows = right.to_rows()
    non_key_l = [c for c in left.column_names if c not in on]
    non_key_r = [c for c in right.column_names if c not in on]
    overlap = set(non_key_l) & set(non_key_r)

    def out_row(lrow, rrow, key):
        row = dict(zip(on, key))
        for c in non_key_l:
            row[c + "_x" if c in overlap else c] = \
                lrow[c] if lrow is not None else None
        for c in non_key_r:
            row[c + "_y" if c in overlap else c] = \
                rrow[c] if rrow is not None else None
        return row

    out, matched = [], set()
    for lrow in lrows:
        key = tuple(lrow[c] for c in on)
        hits = [j for j, rrow in enumerate(rrows)
                if tuple(rrow[c] for c in on) == key]
        if hits:
            matched.update(hits)
            out.extend(out_row(lrow, rrows[j], key) for j in hits)
        elif how in ("left", "outer"):
            out.append(out_row(lrow, None, key))
    if how == "outer":
        out.extend(out_row(None, rrow, tuple(rrow[c] for c in on))
                   for j, rrow in enumerate(rrows) if j not in matched)
    return out


@given(keyed_tables(), st.sampled_from(["inner", "left", "outer"]))
@settings(max_examples=100)
def test_merge_matches_oracle(pair, how):
    left, right = pair
    merged = left.merge(right, on=["id_", "attribute"], how=how)
    assert merged.to_rows() == oracle_merge(left, right,
                                            ["id_", "attribute"], how)


@given(keyed_tables())
@settings(max_examples=50)
def test_single_key_merge_matches_oracle(pair):
    left, right = pair
    merged = left.merge(right, on="id_", how="inner")
    expected = oracle_merge(
        left.rename({"attribute": "attr"}),
        right.rename({"attribute": "attr"}), ["id_"], "inner")
    renamed = [{("attribute_x" if k == "attr_x" else
                 "attribute_y" if k == "attr_y" else k): v
                for k, v in row.items()} for row in expected]
    assert merged.to_rows() == renamed


@given(keyed_tables())
@settings(max_examples=50)
def test_outer_merge_loses_no_row(pair):
    """Every left and right row appears in at least one outer-join row."""
    left, right = pair
    merged = left.merge(right, on=["id_", "attribute"], how="outer")
    inner = left.merge(right, on=["id_", "attribute"], how="inner")
    left_keys = {tuple(r[c] for c in ("id_", "attribute"))
                 for r in left.to_rows()}
    right_keys = {tuple(r[c] for c in ("id_", "attribute"))
                  for r in right.to_rows()}
    merged_keys = {tuple(r[c] for c in ("id_", "attribute"))
                   for r in merged.to_rows()}
    assert merged_keys == left_keys | right_keys
    assert merged.n_rows >= max(left.n_rows, right.n_rows, inner.n_rows)


@st.composite
def grouped_tables(draw, max_rows=10):
    n = draw(st.integers(1, max_rows))
    return Table({
        "key": draw(st.lists(key_cell, min_size=n, max_size=n)),
        "num": draw(st.lists(st.one_of(st.none(), st.integers(-20, 20)),
                             min_size=n, max_size=n)),
    })


def oracle_groups(table, key):
    """Key tuple -> row-index list, in first-seen order (dicts preserve
    insertion order, matching the GroupBy contract)."""
    groups = {}
    for i, row in enumerate(table.to_rows()):
        groups.setdefault((row[key],), []).append(i)
    return groups


ORACLE_AGGS = {
    "count": len,
    "sum": lambda vs: sum(v for v in vs if v is not None),
    "min": lambda vs: min((v for v in vs if v is not None), default=None),
    "max": lambda vs: max((v for v in vs if v is not None), default=None),
    "mean": lambda vs: (sum(v for v in vs if v is not None)
                        / sum(1 for v in vs if v is not None)
                        if any(v is not None for v in vs) else None),
    "first": lambda vs: vs[0],
    "last": lambda vs: vs[-1],
    "nunique": lambda vs: len(set(vs)),
}


@given(grouped_tables(), st.sampled_from(sorted(ORACLE_AGGS)))
@settings(max_examples=100)
def test_groupby_agg_matches_oracle(table, agg):
    result = table.groupby("key").agg({"num": agg})
    nums = table.column("num").values
    expected_keys, expected_vals = [], []
    for key, indices in oracle_groups(table, "key").items():
        expected_keys.append(key[0])
        expected_vals.append(ORACLE_AGGS[agg]([nums[i] for i in indices]))
    assert list(result.column("key").values) == expected_keys
    assert list(result.column("num").values) == expected_vals


@given(grouped_tables())
@settings(max_examples=50)
def test_groupby_partitions_rows(table):
    """Group index lists are a partition of range(n_rows)."""
    indices = table.groupby("key").group_indices()
    flat = [i for ix in indices.values() for i in ix]
    assert sorted(flat) == list(range(table.n_rows))
    assert list(indices) == list(oracle_groups(table, "key"))


@given(grouped_tables())
@settings(max_examples=50)
def test_groupby_then_merge_round_trip(table):
    """Joining per-group sums back onto the table gives every row the
    sum of its own group -- groupby and join agree with each other."""
    sums = table.groupby("key").sum("num", name="group_sum")
    joined = table.merge(sums, on="key", how="left")
    assert joined.n_rows == table.n_rows
    groups = oracle_groups(table, "key")
    nums = table.column("num").values
    for row in joined.to_rows():
        expected = sum(nums[i] for i in groups[(row["key"],)]
                       if nums[i] is not None)
        assert row["group_sum"] == expected
