"""Tests for repro.table.column."""

import pytest

from repro.errors import SchemaError
from repro.table import Column


class TestConstruction:
    def test_values_are_immutable_tuple(self):
        col = Column("a", [1, 2, 3])
        assert col.values == (1, 2, 3)
        assert isinstance(col.values, tuple)

    def test_name_property(self):
        assert Column("salary", []).name == "salary"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", [1])

    def test_non_string_name_rejected(self):
        with pytest.raises(SchemaError):
            Column(42, [1])

    def test_accepts_generator(self):
        col = Column("a", (i * 2 for i in range(3)))
        assert col.values == (0, 2, 4)


class TestProtocol:
    def test_len(self):
        assert len(Column("a", [1, 2])) == 2

    def test_iteration(self):
        assert list(Column("a", "xyz")) == ["x", "y", "z"]

    def test_indexing(self):
        col = Column("a", [10, 20, 30])
        assert col[0] == 10
        assert col[-1] == 30

    def test_slicing_returns_column(self):
        col = Column("a", [10, 20, 30])[1:]
        assert isinstance(col, Column)
        assert col.values == (20, 30)

    def test_equality_includes_name(self):
        assert Column("a", [1]) == Column("a", [1])
        assert Column("a", [1]) != Column("b", [1])

    def test_hashable(self):
        assert len({Column("a", [1]), Column("a", [1])}) == 1

    def test_repr_previews_values(self):
        text = repr(Column("a", list(range(10))))
        assert "..." in text
        assert "a" in text


class TestTransformations:
    def test_rename(self):
        renamed = Column("a", [1]).rename("b")
        assert renamed.name == "b"
        assert renamed.values == (1,)

    def test_map(self):
        assert Column("a", [1, 2]).map(lambda v: v + 1).values == (2, 3)

    def test_map_preserves_name(self):
        assert Column("a", [1]).map(str).name == "a"

    def test_take(self):
        assert Column("a", "abcd").take([3, 0]).values == ("d", "a")

    def test_astype_str_keeps_none(self):
        assert Column("a", [1, None]).astype_str().values == ("1", None)


class TestSummaries:
    def test_is_missing(self):
        assert Column("a", [1, None, 2]).is_missing() == [False, True, False]

    def test_n_missing(self):
        assert Column("a", [None, None, 1]).n_missing() == 2

    def test_unique_preserves_order(self):
        assert Column("a", [3, 1, 3, 2, 1]).unique() == [3, 1, 2]

    def test_unique_includes_none(self):
        assert Column("a", [None, 1, None]).unique() == [None, 1]

    def test_value_counts(self):
        assert Column("a", ["x", "y", "x"]).value_counts() == {"x": 2, "y": 1}

    def test_equals_mask(self):
        a = Column("a", [1, None, 3])
        b = Column("b", [1, None, 4])
        assert a.equals_mask(b) == [True, True, False]

    def test_equals_mask_length_mismatch(self):
        with pytest.raises(SchemaError):
            Column("a", [1]).equals_mask(Column("b", [1, 2]))
