"""Tests for repro.table.io (CSV round-tripping)."""

import pytest

from repro.errors import CSVFormatError
from repro.table import Table, read_csv, write_csv


class TestReadCsv:
    def test_round_trip(self, tmp_path, people):
        path = tmp_path / "people.csv"
        write_csv(people, path)
        loaded = read_csv(path)
        assert loaded.column("name").values == people.column("name").values

    def test_all_cells_read_as_strings(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2.5\n")
        loaded = read_csv(path)
        assert loaded.column("a").values == ("1",)
        assert loaded.column("b").values == ("2.5",)

    def test_nan_kept_literal_by_default(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\nNaN\n")
        assert read_csv(path).column("a").values == ("NaN",)

    def test_missing_markers_converted(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\nNaN\nx\n")
        loaded = read_csv(path, missing_markers=["NaN"])
        assert loaded.column("a").values == (None, "x")

    def test_quoted_commas_preserved(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text('a,b\n"x,y",z\n')
        assert read_csv(path).column("a").values == ("x,y",)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(CSVFormatError, match="empty"):
            read_csv(path)

    def test_duplicate_header_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,a\n1,2\n")
        with pytest.raises(CSVFormatError, match="duplicate"):
            read_csv(path)

    def test_ragged_row_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(CSVFormatError, match=":3"):
            read_csv(path)


class TestWriteCsv:
    def test_none_written_as_marker(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(Table({"a": [None, "x"]}), path, missing_marker="NULL")
        assert path.read_text().splitlines() == ["a", "NULL", "x"]

    def test_header_order_matches_table(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(Table({"b": [1], "a": [2]}), path)
        assert path.read_text().splitlines()[0] == "b,a"

    def test_non_string_cells_stringified(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(Table({"a": [1, 2.5]}), path)
        assert read_csv(path).column("a").values == ("1", "2.5")

    def test_dirty_clean_pair_round_trip(self, tmp_path, paper_example):
        dirty, clean = paper_example
        write_csv(dirty, tmp_path / "dirty.csv")
        write_csv(clean, tmp_path / "clean.csv")
        assert read_csv(tmp_path / "dirty.csv") == dirty
        assert read_csv(tmp_path / "clean.csv") == clean
