"""Tests for repro.table.groupby."""

import pytest

from repro.errors import SchemaError
from repro.table import Table


@pytest.fixture
def sales() -> Table:
    return Table({
        "region": ["n", "s", "n", "n", "s"],
        "product": ["a", "a", "b", "a", "b"],
        "units": [1, 2, 3, None, 5],
    })


class TestGrouping:
    def test_group_count(self, sales):
        assert len(sales.groupby("region")) == 2

    def test_group_indices(self, sales):
        indices = sales.groupby("region").group_indices()
        assert indices[("n",)] == [0, 2, 3]
        assert indices[("s",)] == [1, 4]

    def test_multi_key(self, sales):
        grouped = sales.groupby(["region", "product"])
        assert len(grouped) == 4

    def test_groups_iteration(self, sales):
        keys = [key for key, _ in sales.groupby("region").groups()]
        assert keys == [("n",), ("s",)]  # first-seen order

    def test_sub_tables(self, sales):
        for key, sub in sales.groupby("region").groups():
            assert set(sub.column("region").values) == {key[0]}

    def test_empty_keys_rejected(self, sales):
        with pytest.raises(SchemaError):
            sales.groupby([])

    def test_unknown_key_rejected(self, sales):
        with pytest.raises(SchemaError):
            sales.groupby("ghost")


class TestAggregation:
    def test_size(self, sales):
        out = sales.groupby("region").size()
        assert out.to_rows() == [
            {"region": "n", "size": 3}, {"region": "s", "size": 2}]

    def test_size_custom_name(self, sales):
        out = sales.groupby("region").size(name="cnt")
        assert "cnt" in out

    def test_count(self, sales):
        out = sales.groupby("region").count("units")
        assert out.column("units").values == (3, 2)

    def test_count_renamed(self, sales):
        out = sales.groupby("region").count("units", name="n_units")
        assert out.column("n_units").values == (3, 2)

    def test_sum_skips_missing(self, sales):
        out = sales.groupby("region").sum("units")
        assert out.column("units").values == (4, 7)

    def test_agg_mean(self, sales):
        out = sales.groupby("region").agg({"units": "mean"})
        assert out.column("units").values == (2.0, 3.5)

    def test_agg_min_max(self, sales):
        grouped = sales.groupby("region")
        assert grouped.agg({"units": "min"}).column("units").values == (1, 2)
        assert grouped.agg({"units": "max"}).column("units").values == (3, 5)

    def test_agg_first_last(self, sales):
        grouped = sales.groupby("region")
        assert grouped.agg({"product": "first"}).column("product").values == ("a", "a")
        assert grouped.agg({"product": "last"}).column("product").values == ("a", "b")

    def test_agg_nunique(self, sales):
        out = sales.groupby("region").agg({"product": "nunique"})
        assert out.column("product").values == (2, 2)

    def test_agg_list(self, sales):
        out = sales.groupby("region").agg({"product": "list"})
        assert out.column("product")[0] == ["a", "b", "a"]

    def test_agg_callable(self, sales):
        out = sales.groupby("region").agg(
            {"units": lambda vs: sum(v or 0 for v in vs) * 10})
        assert out.column("units").values == (40, 70)

    def test_agg_all_missing_mean_is_none(self):
        table = Table({"k": ["x"], "v": [None]})
        out = table.groupby("k").agg({"v": "mean"})
        assert out.column("v")[0] is None

    def test_agg_unknown_aggregator(self, sales):
        with pytest.raises(SchemaError, match="unknown aggregator"):
            sales.groupby("region").agg({"units": "median"})

    def test_agg_unknown_column(self, sales):
        with pytest.raises(SchemaError):
            sales.groupby("region").agg({"ghost": "sum"})
