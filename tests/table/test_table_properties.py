"""Property-based tests for the table substrate (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.table import Table

cell = st.one_of(st.none(), st.text(string.printable, max_size=8),
                 st.integers(-100, 100))
names = st.lists(st.text(string.ascii_lowercase, min_size=1, max_size=5),
                 min_size=1, max_size=4, unique=True)


@st.composite
def tables(draw, min_rows=0, max_rows=12):
    cols = draw(names)
    n = draw(st.integers(min_rows, max_rows))
    data = {c: draw(st.lists(cell, min_size=n, max_size=n)) for c in cols}
    return Table(data)


@given(tables())
def test_round_trip_rows(table):
    assert Table.from_rows(table.to_rows(), table.column_names) == table


@given(tables())
def test_take_identity(table):
    assert table.take(range(table.n_rows)) == table


@given(tables(min_rows=1))
def test_sort_is_permutation(table):
    key = table.column_names[0]
    sorted_table = table.sort_by([key])
    assert sorted(map(repr, sorted_table.column(key).values)) == \
        sorted(map(repr, table.column(key).values))


@given(tables())
def test_distinct_idempotent(table):
    once = table.distinct()
    assert once.distinct() == once


@given(tables(min_rows=1))
def test_filter_true_keeps_all(table):
    assert table.filter(lambda r: True) == table


@given(tables(min_rows=1))
def test_filter_partitions(table):
    key = table.column_names[0]
    pred = lambda r: r[key] is None
    kept = table.filter(pred)
    dropped = table.filter(lambda r: not pred(r))
    assert kept.n_rows + dropped.n_rows == table.n_rows


@given(tables(min_rows=1, max_rows=6))
@settings(max_examples=50)
def test_melt_preserves_cells(table):
    wide = table.with_column("id_", range(table.n_rows))
    long = wide.melt(["id_"])
    assert long.n_rows == table.n_rows * table.n_cols
    for row in long.iter_rows():
        assert table.column(row["attribute"])[row["id_"]] == row["value"]


@given(tables(min_rows=1, max_rows=6))
@settings(max_examples=50)
def test_groupby_sizes_sum_to_rows(table):
    key = table.column_names[0]
    sizes = table.groupby(key).size()
    assert sum(sizes.column("size").values) == table.n_rows


@given(tables(min_rows=1, max_rows=6))
@settings(max_examples=50)
def test_self_merge_contains_diagonal(table):
    """Self-join on a unique id column returns exactly the original rows."""
    wide = table.with_column("id_", range(table.n_rows))
    merged = wide.merge(wide, on="id_")
    assert merged.n_rows == wide.n_rows
    for name in table.column_names:
        assert merged.column(f"{name}_x").values == \
            merged.column(f"{name}_y").values
