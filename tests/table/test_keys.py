"""Tests for repro.table.keys (candidate keys and FDs)."""

import pytest

from repro.table import (
    Table,
    discover_candidate_keys,
    discover_functional_dependencies,
)
from repro.table.keys import FunctionalDependency, fd_violating_rows


@pytest.fixture
def cities() -> Table:
    # city -> state holds except one violating row (row 4).
    return Table({
        "id": ["1", "2", "3", "4", "5", "6"],
        "city": ["Rome", "Rome", "Paris", "Paris", "Rome", "Paris"],
        "state": ["IT", "IT", "FR", "FR", "FR", "FR"],
    })


class TestCandidateKeys:
    def test_single_column_key_found(self, cities):
        keys = discover_candidate_keys(cities)
        assert ("id",) in keys

    def test_non_unique_column_not_key(self, cities):
        keys = discover_candidate_keys(cities, max_size=1)
        assert ("city",) not in keys

    def test_composite_key(self):
        table = Table({"a": [1, 1, 2, 2], "b": ["x", "y", "x", "y"]})
        assert ("a", "b") in discover_candidate_keys(table, max_size=2)

    def test_minimality_supersets_skipped(self, cities):
        keys = discover_candidate_keys(cities, max_size=2)
        assert ("id",) in keys
        assert all("id" not in key or key == ("id",) for key in keys)

    def test_none_disqualifies(self):
        table = Table({"a": [1, None]})
        assert discover_candidate_keys(table) == []

    def test_empty_table(self):
        assert discover_candidate_keys(Table({"a": []})) == []


class TestFunctionalDependencies:
    def test_exact_fd_found(self, cities):
        fds = discover_functional_dependencies(
            cities, max_violation_rate=0.5)
        assert any(fd.lhs == ("city",) and fd.rhs == "state" for fd in fds)

    def test_violation_rate_measured(self, cities):
        fds = discover_functional_dependencies(cities, max_violation_rate=0.5)
        fd = next(f for f in fds if f.lhs == ("city",) and f.rhs == "state")
        # 6 rows in multi-row groups, 1 deviates from its group majority.
        assert fd.violation_rate == pytest.approx(1 / 6)

    def test_strict_threshold_excludes_noisy_fd(self, cities):
        fds = discover_functional_dependencies(cities, max_violation_rate=0.01)
        assert not any(fd.lhs == ("city",) and fd.rhs == "state" for fd in fds)

    def test_unique_lhs_has_no_support(self, cities):
        # id is unique: every group is a singleton, no evidence.
        fds = discover_functional_dependencies(cities, max_violation_rate=0.5)
        assert not any(fd.lhs == ("id",) for fd in fds)

    def test_missing_cells_ignored(self):
        table = Table({"a": ["x", "x", None], "b": ["1", "1", "2"]})
        fds = discover_functional_dependencies(table)
        assert any(fd.lhs == ("a",) and fd.rhs == "b" for fd in fds)

    def test_empty_table(self):
        assert discover_functional_dependencies(Table({"a": [], "b": []})) == []

    def test_multi_column_lhs(self):
        table = Table({
            "a": ["1", "1", "2", "2"],
            "b": ["x", "y", "x", "y"],
            "c": ["p", "q", "r", "s"],
        })
        # c is determined only by (a, b) jointly; need duplicates to see it.
        doubled = table.concat(table)
        fds = discover_functional_dependencies(doubled, max_lhs_size=2)
        assert any(fd.lhs == ("a", "b") and fd.rhs == "c" for fd in fds)


class TestViolatingRows:
    def test_violating_row_identified(self, cities):
        fd = FunctionalDependency(("city",), "state", 1.0, 1 / 6)
        assert fd_violating_rows(cities, fd) == [4]

    def test_no_violations(self):
        table = Table({"a": ["x", "x"], "b": ["1", "1"]})
        fd = FunctionalDependency(("a",), "b", 1.0, 0.0)
        assert fd_violating_rows(table, fd) == []

    def test_singleton_groups_never_violate(self):
        table = Table({"a": ["x", "y"], "b": ["1", "2"]})
        fd = FunctionalDependency(("a",), "b", 0.0, 0.0)
        assert fd_violating_rows(table, fd) == []
