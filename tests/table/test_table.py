"""Tests for repro.table.table."""

import pytest

from repro.errors import SchemaError
from repro.table import Column, Table


class TestConstruction:
    def test_shape(self, people):
        assert people.shape == (4, 3)
        assert people.n_rows == 4
        assert people.n_cols == 3

    def test_empty_table(self):
        table = Table()
        assert table.shape == (0, 0)

    def test_empty_with_columns(self):
        table = Table.empty(["a", "b"])
        assert table.shape == (0, 2)
        assert table.column_names == ["a", "b"]

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table({"a": [1, 2], "b": [1]})

    def test_from_rows(self):
        table = Table.from_rows([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert table.column("a").values == (1, 3)

    def test_from_rows_missing_keys_become_none(self):
        table = Table.from_rows([{"a": 1}, {"b": 2}])
        assert table.column("a").values == (1, None)
        assert table.column("b").values == (None, 2)

    def test_from_rows_explicit_column_order(self):
        table = Table.from_rows([{"a": 1, "b": 2}], column_names=["b", "a"])
        assert table.column_names == ["b", "a"]

    def test_accepts_column_objects(self):
        table = Table({"x": Column("x", [1, 2])})
        assert table.column("x").values == (1, 2)

    def test_column_object_renamed_to_key(self):
        table = Table({"y": Column("x", [1])})
        assert table.column("y").name == "y"


class TestAccessors:
    def test_column_lookup(self, people):
        assert people["name"][0] == "Ada"

    def test_unknown_column_raises_with_available(self, people):
        with pytest.raises(SchemaError, match="name"):
            people.column("nope")

    def test_contains(self, people):
        assert "city" in people
        assert "zzz" not in people

    def test_row(self, people):
        assert people.row(1) == {"name": "Grace", "city": "Rome", "age": "45"}

    def test_row_negative_index(self, people):
        assert people.row(-1)["name"] == "Edsger"

    def test_row_out_of_range(self, people):
        with pytest.raises(IndexError):
            people.row(4)

    def test_iter_rows(self, people):
        rows = list(people.iter_rows())
        assert len(rows) == 4
        assert rows[0]["city"] == "Zurich"

    def test_to_dict_returns_fresh_lists(self, people):
        data = people.to_dict()
        data["name"].append("extra")
        assert people.n_rows == 4

    def test_equality(self, people):
        assert people == Table(people.to_dict())

    def test_inequality_by_order(self):
        a = Table({"x": [1], "y": [2]})
        b = Table({"y": [2], "x": [1]})
        assert a != b

    def test_preview_contains_data(self, people):
        text = people.preview(2)
        assert "Ada" in text
        assert "more rows" in text


class TestColumnTransforms:
    def test_select_orders_columns(self, people):
        out = people.select(["age", "name"])
        assert out.column_names == ["age", "name"]

    def test_drop(self, people):
        assert people.drop(["age"]).column_names == ["name", "city"]

    def test_drop_unknown_raises(self, people):
        with pytest.raises(SchemaError):
            people.drop(["ghost"])

    def test_rename(self, people):
        out = people.rename({"name": "person"})
        assert "person" in out
        assert out.column("person").name == "person"

    def test_rename_unknown_raises(self, people):
        with pytest.raises(SchemaError):
            people.rename({"ghost": "x"})

    def test_with_column_adds(self, people):
        out = people.with_column("id", range(4))
        assert out.column("id").values == (0, 1, 2, 3)

    def test_with_column_replaces(self, people):
        out = people.with_column("age", ["1", "2", "3", "4"])
        assert out.column("age").values == ("1", "2", "3", "4")

    def test_with_computed(self, people):
        out = people.with_computed("label", lambda r: r["age"] is None)
        assert out.column("label").values == (False, False, False, True)

    def test_map_column(self, people):
        out = people.map_column("name", str.upper)
        assert out.column("name")[0] == "ADA"

    def test_original_unchanged_by_transforms(self, people):
        people.with_column("x", [1, 2, 3, 4])
        assert "x" not in people


class TestRowTransforms:
    def test_take(self, people):
        out = people.take([2, 0])
        assert out.column("name").values == ("Alan", "Ada")

    def test_head(self, people):
        assert people.head(2).n_rows == 2

    def test_head_beyond_length(self, people):
        assert people.head(99).n_rows == 4

    def test_filter(self, people):
        out = people.filter(lambda r: r["city"].startswith("R"))
        assert out.column("name").values == ("Grace",)

    def test_filter_mask(self, people):
        out = people.filter_mask([True, False, False, True])
        assert out.n_rows == 2

    def test_filter_mask_length_mismatch(self, people):
        with pytest.raises(SchemaError):
            people.filter_mask([True])

    def test_filter_in(self, people):
        out = people.filter_in("city", {"Rome", "Paris"})
        assert out.n_rows == 2

    def test_filter_not_in(self, people):
        out = people.filter_not_in("city", ["Rome"])
        assert out.n_rows == 3

    def test_sort_by(self, people):
        out = people.sort_by(["city"])
        assert out.column("city").values == ("Paris", "Rome", "Vienna", "Zurich")

    def test_sort_by_reverse(self, people):
        out = people.sort_by(["city"], reverse=True)
        assert out.column("city")[0] == "Zurich"

    def test_sort_missing_first(self, people):
        out = people.sort_by(["age"])
        assert out.column("age")[0] is None

    def test_sort_mixed_types(self):
        table = Table({"x": [2, "b", None, 1, "a"]})
        assert table.sort_by(["x"]).column("x").values == (None, 1, 2, "a", "b")

    def test_distinct_full_rows(self):
        table = Table({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert table.distinct().n_rows == 2

    def test_distinct_subset_keeps_first(self):
        table = Table({"a": [1, 1, 2], "b": ["x", "y", "z"]})
        out = table.distinct(["a"])
        assert out.column("b").values == ("x", "z")

    def test_concat(self, people):
        combined = people.concat(people)
        assert combined.n_rows == 8

    def test_concat_schema_mismatch(self, people):
        with pytest.raises(SchemaError):
            people.concat(people.drop(["age"]))


class TestMelt:
    def test_melt_shape(self, people):
        long = people.with_column("id_", range(4)).melt(["id_"])
        assert long.n_rows == 4 * 3
        assert long.column_names == ["id_", "attribute", "value"]

    def test_melt_values_aligned(self, people):
        long = people.with_column("id_", range(4)).melt(["id_"])
        first_tuple = long.filter(lambda r: r["id_"] == 0)
        by_attr = {r["attribute"]: r["value"] for r in first_tuple.iter_rows()}
        assert by_attr == {"name": "Ada", "city": "Zurich", "age": "36"}

    def test_melt_custom_names(self, people):
        long = people.with_column("id_", range(4)).melt(
            ["id_"], ["name"], var_name="attr", value_name="val")
        assert long.column_names == ["id_", "attr", "val"]
        assert long.n_rows == 4

    def test_melt_unknown_column(self, people):
        with pytest.raises(SchemaError):
            people.melt(["ghost"])


class TestPivot:
    def test_inverse_of_melt(self, people):
        wide = people.with_column("id_", range(4))
        long = wide.melt(["id_"])
        back = long.pivot("id_", "attribute", "value")
        assert back.select(people.column_names) == people

    def test_column_order_respected(self, people):
        long = people.with_column("id_", range(4)).melt(["id_"])
        back = long.pivot("id_", "attribute", "value",
                          column_order=["age", "name", "city"])
        assert back.column_names == ["id_", "age", "name", "city"]

    def test_missing_combination_is_none(self):
        long = Table({
            "k": [0, 0, 1],
            "attr": ["a", "b", "a"],
            "v": ["x", "y", "z"],
        })
        wide = long.pivot("k", "attr", "v")
        assert wide.column("b").values == ("y", None)

    def test_duplicate_combination_keeps_last(self):
        long = Table({
            "k": [0, 0],
            "attr": ["a", "a"],
            "v": ["first", "second"],
        })
        assert long.pivot("k", "attr", "v").column("a").values == ("second",)

    def test_non_string_column_values_rejected(self):
        long = Table({"k": [0], "attr": [42], "v": ["x"]})
        with pytest.raises(SchemaError):
            long.pivot("k", "attr", "v")
