"""Tests for repro.table.join."""

import pytest

from repro.errors import JoinError, SchemaError
from repro.table import Table


@pytest.fixture
def left() -> Table:
    return Table({
        "id": [0, 1, 2],
        "attr": ["a", "a", "b"],
        "value": ["x0", "x1", "x2"],
    })


@pytest.fixture
def right() -> Table:
    return Table({
        "id": [0, 1, 3],
        "attr": ["a", "a", "b"],
        "value": ["y0", "y1", "y3"],
    })


class TestInnerJoin:
    def test_suffixes_applied(self, left, right):
        out = left.merge(right, on=["id", "attr"])
        assert out.column_names == ["id", "attr", "value_x", "value_y"]

    def test_matching_rows_only(self, left, right):
        out = left.merge(right, on=["id", "attr"])
        assert out.n_rows == 2
        assert out.column("value_x").values == ("x0", "x1")
        assert out.column("value_y").values == ("y0", "y1")

    def test_single_key_string(self, left, right):
        out = left.merge(right, on="id")
        assert out.n_rows == 2
        assert "attr_x" in out and "attr_y" in out

    def test_one_to_many_fanout(self):
        a = Table({"k": [1], "v": ["a"]})
        b = Table({"k": [1, 1], "w": ["x", "y"]})
        out = a.merge(b, on="k")
        assert out.n_rows == 2
        assert out.column("w").values == ("x", "y")

    def test_no_suffix_for_disjoint_columns(self):
        a = Table({"k": [1], "v": ["a"]})
        b = Table({"k": [1], "w": ["x"]})
        out = a.merge(b, on="k")
        assert out.column_names == ["k", "v", "w"]


class TestLeftAndOuter:
    def test_left_join_fills_none(self, left, right):
        out = left.merge(right, on=["id", "attr"], how="left")
        assert out.n_rows == 3
        assert out.column("value_y").values == ("y0", "y1", None)

    def test_outer_join_includes_right_only(self, left, right):
        out = left.merge(right, on=["id", "attr"], how="outer")
        assert out.n_rows == 4
        last = out.row(3)
        assert last["id"] == 3
        assert last["value_x"] is None
        assert last["value_y"] == "y3"

    def test_none_keys_match_each_other(self):
        a = Table({"k": [None], "v": ["a"]})
        b = Table({"k": [None], "w": ["x"]})
        assert a.merge(b, on="k").n_rows == 1


class TestValidation:
    def test_invalid_how(self, left, right):
        with pytest.raises(JoinError):
            left.merge(right, on="id", how="cross")

    def test_empty_keys(self, left, right):
        with pytest.raises(JoinError):
            left.merge(right, on=[])

    def test_missing_key_left(self, right):
        with pytest.raises(SchemaError):
            Table({"z": [1]}).merge(right, on="id")

    def test_missing_key_right(self, left):
        with pytest.raises(SchemaError):
            left.merge(Table({"z": [1]}), on="id")

    def test_custom_suffixes(self, left, right):
        out = left.merge(right, on=["id", "attr"],
                         suffixes=("_dirty", "_clean"))
        assert "value_dirty" in out and "value_clean" in out

    def test_left_row_order_preserved(self):
        a = Table({"k": [3, 1, 2], "v": ["c", "a", "b"]})
        b = Table({"k": [1, 2, 3], "w": ["x", "y", "z"]})
        out = a.merge(b, on="k")
        assert out.column("v").values == ("c", "a", "b")
