"""The cross-detector conformance pass.

Every family in the registry -- present and future -- is held to the
same :class:`~repro.detectors.base.Detector` contract, parametrized over
``list_detectors()`` on both autograd backends:

* ``fit``/``score_cells`` shapes and the [0, 1] probability range;
* bitwise determinism of refitting with the same seed;
* subset/permutation invariance for pointwise detectors (a cell's score
  may not depend on which other rows share the batch);
* archive round-trip: identical scores and fingerprint after
  ``save``/``load``;
* the ``type(d)(**d.config())`` rebuild identity and JSON-serialisable
  configs;
* ``NotFittedError`` before ``fit``.

Registering a detector is all it takes to be covered here.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.detectors import (
    POINTWISE,
    TRANSDUCTIVE,
    get,
    list_detectors,
)
from repro.errors import NotFittedError
from repro.nn.backend import use_backend
from repro.table import Table

from tests.detectors.conftest import SEED

BACKENDS = ("fused", "graph")


def _all_detectors():
    return list_detectors()


def _subset_table(table: Table, rows: list[int]) -> Table:
    return Table({name: [table.column(name).values[i] for i in rows]
                  for name in table.column_names})


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", _all_detectors())
class TestConformance:
    def test_registry_entry(self, name, backend):
        cls = get(name)
        assert cls.name == name or name == "ensemble"
        example = cls.example(seed=SEED)
        assert example.name == name
        assert example.capabilities & {POINTWISE, TRANSDUCTIVE}

    def test_score_shapes_and_range(self, name, backend, pair, fitted):
        _, scores = fitted(name, backend)
        assert scores.shape == (pair.dirty.n_rows, pair.dirty.n_cols)
        assert scores.dtype == np.float64
        assert float(scores.min()) >= 0.0
        assert float(scores.max()) <= 1.0

    def test_seed_determinism(self, name, backend, pair, fitted):
        _, scores = fitted(name, backend)
        with use_backend(backend):
            refit = get(name).example(seed=SEED).fit(pair)
            again = refit.score_cells(pair.dirty)
        np.testing.assert_array_equal(scores, again)

    def test_predict_cells_thresholds_scores(self, name, backend, pair,
                                             fitted):
        detector, scores = fitted(name, backend)
        with use_backend(backend):
            predictions = detector.predict_cells(pair.dirty)
        np.testing.assert_array_equal(predictions,
                                      (scores >= 0.5).astype(np.int64))

    def test_subset_and_permutation_invariance(self, name, backend, pair,
                                               fitted):
        detector, scores = fitted(name, backend)
        if TRANSDUCTIVE in detector.capabilities:
            pytest.skip("transductive detectors score only the fitted table")
        rows = [7, 3, 11, 3, 0]  # permuted, with a repeat
        with use_backend(backend):
            part = detector.score_cells(_subset_table(pair.dirty, rows))
        np.testing.assert_array_equal(part, scores[rows])

    def test_archive_round_trip(self, name, backend, pair, fitted, tmp_path):
        detector, scores = fitted(name, backend)
        path = tmp_path / f"{name}.npz"
        detector.save(path)
        with use_backend(backend):
            loaded = type(detector).load(path)
            again = loaded.score_cells(pair.dirty)
        np.testing.assert_array_equal(scores, again)
        assert loaded.fingerprint() == detector.fingerprint()

    def test_config_rebuilds_and_serialises(self, name, backend, fitted):
        detector, _ = fitted(name, backend)
        config = detector.config()
        json.loads(json.dumps(config))  # JSON-serialisable, round-trips
        rebuilt = type(detector)(**config)
        assert rebuilt.config() == config
        # An unfitted rebuild carries no state, only identity.
        assert rebuilt._state_digest() is None

    def test_unfitted_detector_refuses_to_score(self, name, backend, pair):
        detector = get(name).example(seed=SEED)
        with pytest.raises(NotFittedError):
            detector.score_cells(pair.dirty)

    def test_fingerprint_changes_with_fitted_state(self, name, backend,
                                                   fitted):
        detector, _ = fitted(name, backend)
        unfitted = type(detector)(**detector.config())
        assert detector.fingerprint() != unfitted.fingerprint()
