"""Property tests for score fusion and calibration.

Hypothesis drives the calibrators directly -- every fitted map must be
monotone non-decreasing, land in [0, 1] and fit deterministically, for
any (scores, labels) sample.  The ensemble-level contracts ride on one
tiny real dataset: a single-member ensemble is byte-identical to the
bare member, and fusion is bitwise invariant to the order members were
listed.
"""

from __future__ import annotations

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import load
from repro.detectors import (
    EnsembleDetector,
    IdentityCalibrator,
    fit_calibrator,
    get,
    restore_calibrator,
)

SEED = 0


def calibration_samples():
    """(scores, labels) pairs of matching length, scores in [0, 1]."""
    return st.integers(min_value=2, max_value=40).flatmap(
        lambda n: st.tuples(
            st.lists(st.floats(min_value=0.0, max_value=1.0,
                               allow_nan=False), min_size=n, max_size=n),
            st.lists(st.integers(min_value=0, max_value=1),
                     min_size=n, max_size=n)))


@pytest.mark.parametrize("method", ["auto", "isotonic", "platt", "identity"])
class TestCalibratorProperties:
    @settings(max_examples=60, deadline=None)
    @given(sample=calibration_samples())
    def test_monotone_and_bounded(self, method, sample):
        scores, labels = np.array(sample[0]), np.array(sample[1])
        calibrator = fit_calibrator(scores, labels, method=method)
        grid = np.linspace(-0.5, 1.5, 101)  # beyond the fitted range too
        out = calibrator.transform(grid)
        assert np.all(np.diff(out) >= 0.0), "calibration must be monotone"
        assert float(out.min()) >= 0.0 and float(out.max()) <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(sample=calibration_samples())
    def test_deterministic_and_state_round_trips(self, method, sample):
        scores, labels = np.array(sample[0]), np.array(sample[1])
        first = fit_calibrator(scores, labels, method=method)
        second = fit_calibrator(scores, labels, method=method)
        grid = np.linspace(0.0, 1.0, 33)
        np.testing.assert_array_equal(first.transform(grid),
                                      second.transform(grid))
        restored = restore_calibrator(first.state())
        np.testing.assert_array_equal(first.transform(grid),
                                      restored.transform(grid))

    @settings(max_examples=30, deadline=None)
    @given(sample=calibration_samples())
    def test_degenerate_labels_fall_back_to_identity(self, method, sample):
        scores = np.array(sample[0])
        labels = np.zeros(scores.size, dtype=np.int64)
        if method == "identity":
            pytest.skip("identity is already the fallback")
        calibrator = fit_calibrator(scores, labels, method=method)
        assert isinstance(calibrator, IdentityCalibrator)


class TestEnsembleFusionContracts:
    @pytest.fixture(scope="class")
    def pair(self):
        return load("beers", n_rows=40, seed=SEED)

    @pytest.fixture(scope="class")
    def labeled_rows(self):
        return [0, 5, 11, 17, 23, 31]

    def test_single_member_ensemble_is_byte_identical(self, pair,
                                                      labeled_rows):
        member_config = get("etsb").example(seed=SEED).config()
        bare = get("etsb").example(seed=SEED).fit(
            pair, labeled_rows=labeled_rows)
        ensemble = EnsembleDetector(
            members=[("etsb", member_config)], seed=SEED).fit(
            pair, labeled_rows=labeled_rows)
        np.testing.assert_array_equal(bare.score_cells(pair.dirty),
                                      ensemble.score_cells(pair.dirty))
        assert ensemble._mode == ("identity",)

    def test_fusion_invariant_to_member_order(self, pair, labeled_rows):
        config = EnsembleDetector.example(seed=SEED).config()
        forward = EnsembleDetector(**config).fit(
            pair, labeled_rows=labeled_rows)
        reversed_config = {**config,
                           "members": list(reversed(config["members"]))}
        backward = EnsembleDetector(**reversed_config).fit(
            pair, labeled_rows=labeled_rows)
        np.testing.assert_array_equal(forward.score_cells(pair.dirty),
                                      backward.score_cells(pair.dirty))

    def test_worker_fanout_matches_serial(self, pair, labeled_rows):
        config = EnsembleDetector.example(seed=SEED).config()
        serial = EnsembleDetector(**config).fit(
            pair, labeled_rows=labeled_rows)
        fanned = EnsembleDetector(**{**config, "n_workers": 2}).fit(
            pair, labeled_rows=labeled_rows)
        np.testing.assert_array_equal(serial.score_cells(pair.dirty),
                                      fanned.score_cells(pair.dirty))

    def test_calibrated_fusion_stays_in_probability_range(self, pair,
                                                          labeled_rows):
        ensemble = EnsembleDetector.example(seed=SEED).fit(
            pair, labeled_rows=labeled_rows)
        scores = ensemble.score_cells(pair.dirty)
        assert float(scores.min()) >= 0.0
        assert float(scores.max()) <= 1.0
