"""Shared fixtures for the detector-registry tests.

One small dataset pair serves every conformance check, and fitted
detectors are cached per ``(name, backend)`` -- the conformance pass
re-runs for every registered family on both autograd backends, and
refitting the same tiny detector for each property would dominate the
suite's runtime without adding coverage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load
from repro.detectors import get
from repro.nn.backend import use_backend

N_ROWS = 40
SEED = 0


@pytest.fixture(scope="session")
def pair():
    return load("beers", n_rows=N_ROWS, seed=SEED)


@pytest.fixture(scope="session")
def fitted_cache():
    return {}


@pytest.fixture
def fitted(pair, fitted_cache):
    """``fitted(name, backend)`` -> (detector, scores), cached."""
    def _fitted(name: str, backend: str):
        key = (name, backend)
        if key not in fitted_cache:
            with use_backend(backend):
                detector = get(name).example(seed=SEED).fit(pair)
                scores = detector.score_cells(pair.dirty)
            fitted_cache[key] = (detector, np.asarray(scores))
        return fitted_cache[key]
    return _fitted
