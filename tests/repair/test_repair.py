"""Tests for the repair subsystem."""

import numpy as np
import pytest

from repro.datasets import load
from repro.errors import DataError
from repro.repair import (
    FormatRepairer,
    FrequentValueRepairer,
    MajorityGroupRepairer,
    RepairPipeline,
    repair_accuracy,
)
from repro.table import Table


class TestFormatRepairer:
    @pytest.fixture
    def column_table(self):
        return Table({
            "count": ["1000", "2500", "379,998", "4200", "8800",
                      "123", "77", "900", "41", "5600"],
            "rate": ["7", "8", "9.0", "5", "3", "2", "6", "4", "9", "8"],
            "zip": ["01907", "02114", "1907", "03591", "04005",
                    "11230", "90210", "33109", "60601", "73301"],
            "abv": ["0.05", "0.061%", "0.07", "0.04", "0.09",
                    "0.06", "0.08", "0.03", "0.05", "0.07"],
        })

    def test_strips_thousands_separator(self, column_table):
        repairer = FormatRepairer().fit(column_table)
        repair = repairer.suggest(2, "count", "379,998")
        assert repair is not None
        assert repair.new_value == "379998"

    def test_strips_decimal_suffix(self, column_table):
        repairer = FormatRepairer().fit(column_table)
        assert repairer.suggest(2, "rate", "9.0").new_value == "9"

    def test_repads_leading_zero(self, column_table):
        repairer = FormatRepairer().fit(column_table)
        assert repairer.suggest(2, "zip", "1907").new_value == "01907"

    def test_strips_percent(self, column_table):
        repairer = FormatRepairer().fit(column_table)
        assert repairer.suggest(1, "abv", "0.061%").new_value == "0.061"

    def test_strips_unit_suffix(self):
        table = Table({"oz": ["12.0", "16.0", "12.0 oz", "8.4", "19.2"]})
        repairer = FormatRepairer().fit(table)
        assert repairer.suggest(2, "oz", "12.0 oz").new_value == "12.0"

    def test_abstains_on_conforming_value(self, column_table):
        repairer = FormatRepairer().fit(column_table)
        assert repairer.suggest(0, "count", "1000") is None

    def test_abstains_without_dominant_pattern(self):
        table = Table({"x": ["1", "a-b", "??", "x9x", "..."]})
        repairer = FormatRepairer().fit(table)
        assert repairer.suggest(0, "x", "1") is None

    def test_abstains_on_empty_value(self, column_table):
        repairer = FormatRepairer().fit(column_table)
        assert repairer.suggest(0, "count", "") is None


class TestFrequentValueRepairer:
    def test_suggests_modal_value(self):
        table = Table({"state": ["CA"] * 18 + ["Cx", "NY"]})
        repairer = FrequentValueRepairer(max_cardinality_ratio=0.5).fit(table)
        assert repairer.suggest(18, "state", "Cx").new_value == "CA"

    def test_skips_high_cardinality(self):
        table = Table({"name": [f"n{i}" for i in range(30)]})
        repairer = FrequentValueRepairer().fit(table)
        assert repairer.suggest(0, "name", "n0") is None

    def test_abstains_when_already_modal(self):
        table = Table({"state": ["CA"] * 19 + ["NY"]})
        repairer = FrequentValueRepairer(max_cardinality_ratio=0.5).fit(table)
        assert repairer.suggest(0, "state", "CA") is None


class TestMajorityGroupRepairer:
    @pytest.fixture
    def grouped(self):
        return Table({
            "flight": ["UA-1", "UA-1", "UA-1", "DL-2"],
            "dep": ["9:00", "9:20", "9:00", "8:00"],
        })

    def test_repairs_to_group_majority(self, grouped):
        repairer = MajorityGroupRepairer(("flight",)).fit(grouped)
        repair = repairer.suggest(1, "dep", "9:20")
        assert repair.new_value == "9:00"
        assert repair.confidence == pytest.approx(2 / 3)

    def test_abstains_on_majority_value(self, grouped):
        repairer = MajorityGroupRepairer(("flight",)).fit(grouped)
        assert repairer.suggest(0, "dep", "9:00") is None

    def test_abstains_on_singleton_group(self, grouped):
        repairer = MajorityGroupRepairer(("flight",)).fit(grouped)
        assert repairer.suggest(3, "dep", "8:00") is None

    def test_empty_key_rejected(self):
        with pytest.raises(DataError):
            MajorityGroupRepairer(())


class TestRepairPipeline:
    def test_beers_formatting_repairs_are_exact(self):
        """Format repairs on Beers must reproduce the clean values."""
        pair = load("beers", n_rows=200, seed=1)
        mask = np.array(pair.error_mask())
        pipeline = RepairPipeline([FormatRepairer(), FrequentValueRepairer()])
        outcome = pipeline.run(pair.dirty, mask)
        assert outcome.n_applied > 20
        assert repair_accuracy(outcome, pair.clean) > 0.9

    def test_flights_majority_repairs(self):
        pair = load("flights", n_rows=120, seed=1)
        mask = np.array(pair.error_mask())
        pipeline = RepairPipeline([MajorityGroupRepairer(("flight",))])
        outcome = pipeline.run(pair.dirty, mask)
        assert outcome.n_applied > 50
        assert repair_accuracy(outcome, pair.clean) > 0.8

    def test_unflagged_cells_untouched(self):
        pair = load("beers", n_rows=60, seed=1)
        mask = np.zeros(pair.dirty.shape, dtype=bool)
        outcome = RepairPipeline([FormatRepairer()]).run(pair.dirty, mask)
        assert outcome.repaired == pair.dirty
        assert outcome.n_applied == 0

    def test_unrepaired_cells_reported(self):
        table = Table({"x": ["weird1", "weird2", "weird3"]})
        mask = np.array([[True], [False], [False]])
        outcome = RepairPipeline([FrequentValueRepairer()]).run(table, mask)
        assert outcome.unrepaired == ((0, "x"),)

    def test_highest_confidence_wins(self):
        table = Table({
            "flight": ["UA-1", "UA-1", "UA-1"],
            "dep": ["9:00", "9:20", "9:00"],
        })
        mask = np.zeros((3, 2), dtype=bool)
        mask[1, 1] = True
        pipeline = RepairPipeline([
            FrequentValueRepairer(max_cardinality_ratio=1.0),
            MajorityGroupRepairer(("flight",)),
        ], min_confidence=0.0)
        outcome = pipeline.run(table, mask)
        assert outcome.applied[0].repairer == "majority_group"

    def test_validation(self):
        with pytest.raises(DataError):
            RepairPipeline([])
        table = Table({"x": ["a"]})
        with pytest.raises(DataError):
            RepairPipeline([FormatRepairer()]).run(table, np.zeros((2, 2)))

    def test_repair_accuracy_no_repairs(self):
        pair = load("beers", n_rows=50, seed=1)
        mask = np.zeros(pair.dirty.shape, dtype=bool)
        outcome = RepairPipeline([FormatRepairer()]).run(pair.dirty, mask)
        assert repair_accuracy(outcome, pair.clean) == 0.0
