"""Property-based tests for the repair pipeline."""

import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repair import FormatRepairer, FrequentValueRepairer, RepairPipeline
from repro.table import Table

value = st.text(string.ascii_letters + string.digits + ".,%", min_size=1,
                max_size=8)


@st.composite
def tables_with_masks(draw):
    n_rows = draw(st.integers(3, 15))
    table = Table({
        "a": draw(st.lists(value, min_size=n_rows, max_size=n_rows)),
        "b": draw(st.lists(value, min_size=n_rows, max_size=n_rows)),
    })
    mask = np.array(draw(st.lists(
        st.tuples(st.booleans(), st.booleans()),
        min_size=n_rows, max_size=n_rows)))
    return table, mask


@given(tables_with_masks())
@settings(max_examples=40, deadline=None)
def test_unflagged_cells_never_change(payload):
    table, mask = payload
    outcome = RepairPipeline([FormatRepairer(),
                              FrequentValueRepairer()]).run(table, mask)
    for j, name in enumerate(table.column_names):
        for i in range(table.n_rows):
            if not mask[i, j]:
                assert outcome.repaired.column(name)[i] == \
                    table.column(name)[i]


@given(tables_with_masks())
@settings(max_examples=40, deadline=None)
def test_ledger_partition(payload):
    """Every flagged cell is either repaired or reported unrepaired."""
    table, mask = payload
    outcome = RepairPipeline([FormatRepairer(),
                              FrequentValueRepairer()]).run(table, mask)
    flagged = {(i, name)
               for j, name in enumerate(table.column_names)
               for i in range(table.n_rows) if mask[i, j]}
    repaired = {(r.row, r.attribute) for r in outcome.applied}
    unrepaired = set(outcome.unrepaired)
    assert repaired | unrepaired == flagged
    assert repaired & unrepaired == set()


@given(tables_with_masks())
@settings(max_examples=40, deadline=None)
def test_applied_repairs_change_the_value(payload):
    table, mask = payload
    outcome = RepairPipeline([FormatRepairer(),
                              FrequentValueRepairer()]).run(table, mask)
    for repair in outcome.applied:
        assert repair.new_value != repair.old_value
        assert outcome.repaired.column(repair.attribute)[repair.row] == \
            repair.new_value


@given(tables_with_masks())
@settings(max_examples=30, deadline=None)
def test_pipeline_idempotent_on_repaired_output(payload):
    """Re-running on the repaired table with the same still-flagged mask
    applies no *format* repair twice (repairs converge)."""
    table, mask = payload
    pipeline = RepairPipeline([FormatRepairer()])
    first = pipeline.run(table, mask)
    second = RepairPipeline([FormatRepairer()]).run(first.repaired, mask)
    repaired_once = {(r.row, r.attribute) for r in first.applied}
    repaired_twice = {(r.row, r.attribute) for r in second.applied}
    assert repaired_once.isdisjoint(repaired_twice)
