"""Tests for the shared generator vocabularies."""

import re

import numpy as np
import pytest

from repro.datasets import vocab


class TestVocabularies:
    def test_city_state_is_functional_dependency(self):
        mapping = {}
        for city, state in vocab.CITY_STATE:
            assert mapping.setdefault(city, state) == state

    def test_states_derived_from_pairs(self):
        assert set(vocab.STATES) == {s for _, s in vocab.CITY_STATE}

    def test_journals_have_three_fields(self):
        for journal, abbreviation, issn in vocab.JOURNALS:
            assert journal and abbreviation
            assert re.match(r"^\d{4}-\d{3}[\dX]$", issn)

    def test_flight_sources_distinct(self):
        assert len(set(vocab.FLIGHT_SOURCES)) == len(vocab.FLIGHT_SOURCES)


class TestFactories:
    def test_pick_deterministic(self):
        a = vocab.pick(np.random.default_rng(1), vocab.FIRST_NAMES)
        b = vocab.pick(np.random.default_rng(1), vocab.FIRST_NAMES)
        assert a == b

    def test_person_name_components(self, rng):
        first, last = vocab.person_name(rng)
        assert first in vocab.FIRST_NAMES
        assert last in vocab.LAST_NAMES

    def test_phone_number_format(self, rng):
        for _ in range(10):
            assert re.match(r"^\d{3}-\d{3}-\d{4}$", vocab.phone_number(rng))

    def test_zip_code_five_digits(self, rng):
        for _ in range(50):
            code = vocab.zip_code(rng)
            assert len(code) == 5
            assert code.isdigit()

    def test_zip_code_sometimes_leading_zero(self, rng):
        codes = [vocab.zip_code(rng) for _ in range(200)]
        assert any(c.startswith("0") for c in codes)
        assert any(not c.startswith("0") for c in codes)

    def test_clock_time_format(self, rng):
        for _ in range(20):
            assert re.match(r"^\d{1,2}:\d{2} [ap]\.m\.$", vocab.clock_time(rng))
