"""Tests for the six benchmark dataset generators and the registry."""

import numpy as np
import pytest

from repro.datasets import DATASET_NAMES, dataset_spec, load
from repro.datasets.base import DatasetPair
from repro.errors import DataError
from repro.table import Table

SMALL = 150


@pytest.fixture(scope="module", params=DATASET_NAMES)
def pair(request) -> DatasetPair:
    return load(request.param, n_rows=SMALL, seed=11)


class TestAllGenerators:
    def test_shapes_match(self, pair):
        assert pair.dirty.shape == pair.clean.shape
        assert pair.n_rows == SMALL

    def test_attribute_count_matches_paper(self, pair):
        assert pair.n_attributes == dataset_spec(pair.name).paper_attributes

    def test_error_rate_close_to_paper(self, pair):
        target = dataset_spec(pair.name).paper_error_rate
        assert pair.measured_error_rate() == pytest.approx(target, abs=0.02)

    def test_ledger_consistent_with_mask(self, pair):
        mask = pair.error_mask()
        ledger_cells = {(e.row, e.attribute) for e in pair.errors}
        attr_pos = {a: j for j, a in enumerate(pair.dirty.column_names)}
        for row, attr in ledger_cells:
            assert mask[row][attr_pos[attr]], \
                f"{pair.name}: ledger entry ({row},{attr}) not in mask"

    def test_error_types_match_table2(self, pair):
        assert pair.error_types == dataset_spec(pair.name).error_types

    def test_injected_types_subset_of_declared(self, pair):
        injected = {e.error_type.value for e in pair.errors}
        assert injected <= set(pair.error_types)

    def test_all_declared_types_injected(self, pair):
        injected = {e.error_type.value for e in pair.errors}
        assert injected == set(pair.error_types), \
            f"{pair.name}: declared {pair.error_types}, injected {injected}"

    def test_deterministic_per_seed(self, pair):
        again = load(pair.name, n_rows=SMALL, seed=11)
        assert again.dirty == pair.dirty
        assert again.clean == pair.clean

    def test_seeds_differ(self, pair):
        other = load(pair.name, n_rows=SMALL, seed=99)
        assert other.dirty != pair.dirty

    def test_cells_are_strings(self, pair):
        for name in pair.dirty.column_names:
            for value in pair.dirty.column(name).values[:20]:
                assert isinstance(value, str)

    def test_reasonable_character_inventory(self, pair):
        assert pair.distinct_characters() > 20

    def test_stats_row(self, pair):
        row = pair.stats().as_row()
        assert row["Name"] == pair.name
        assert "x" in row["Size"]


class TestSpecificDatasets:
    def test_hospital_typos_use_x(self):
        pair = load("hospital", n_rows=100, seed=0)
        typos = [e for e in pair.errors if e.error_type.value == "T"]
        assert typos
        assert all("x" in e.corrupted.lower() for e in typos)

    def test_beers_ounces_formatting(self):
        pair = load("beers", n_rows=200, seed=0)
        fi = [e for e in pair.errors
              if e.attribute == "ounces" and e.error_type.value == "FI"]
        assert fi
        assert all(e.corrupted.endswith(" oz") for e in fi)

    def test_flights_sources_share_flights(self):
        pair = load("flights", n_rows=120, seed=0)
        flights = pair.clean.column("flight").values
        assert len(set(flights)) < len(flights)  # duplicated across sources

    def test_movies_thousands_separator(self):
        pair = load("movies", n_rows=300, seed=0)
        fi = [e for e in pair.errors if e.attribute == "rating_count"]
        assert fi
        assert all("," in e.corrupted for e in fi)

    def test_tax_zip_leading_zero_errors(self):
        pair = load("tax", n_rows=400, seed=0)
        fi = [e for e in pair.errors if e.attribute == "zip"]
        assert fi
        assert all(e.original.startswith("0") for e in fi)

    def test_rayyan_issn_flip(self):
        pair = load("rayyan", n_rows=200, seed=0)
        fi = [e for e in pair.errors if e.attribute == "journal_issn"]
        assert fi
        assert all("-" in e.corrupted for e in fi)

    def test_tax_marital_consistency_in_clean(self):
        """The clean Tax table satisfies the marital/child dependency."""
        pair = load("tax", n_rows=300, seed=0)
        for row in pair.clean.iter_rows():
            if row["marital_status"] == "S":
                assert row["has_child"] == "N"


class TestRegistry:
    def test_all_names_present(self):
        assert set(DATASET_NAMES) == {
            "beers", "flights", "hospital", "movies", "rayyan", "tax"}

    def test_unknown_name_rejected(self):
        with pytest.raises(DataError, match="unknown dataset"):
            load("ghosts")

    def test_spec_paper_numbers(self):
        spec = dataset_spec("tax")
        assert spec.paper_rows == 200_000
        assert spec.paper_attributes == 15

    def test_error_rate_override(self):
        pair = load("beers", n_rows=200, seed=0, error_rate=0.02)
        assert pair.measured_error_rate() == pytest.approx(0.02, abs=0.01)

    def test_n_rows_validation(self):
        with pytest.raises(DataError):
            load("beers", n_rows=1)

    def test_dataset_pair_validation(self):
        with pytest.raises(DataError):
            DatasetPair(name="bad", dirty=Table({"a": ["1"]}),
                        clean=Table({"a": ["1", "2"]}))
        with pytest.raises(DataError):
            DatasetPair(name="bad", dirty=Table({"a": ["1"]}),
                        clean=Table({"b": ["1"]}))


class TestLoadPairFromCsv:
    def test_round_trip_through_csv(self, tmp_path):
        from repro.datasets import load_pair_from_csv
        from repro.table import write_csv
        pair = load("beers", n_rows=30, seed=0)
        write_csv(pair.dirty, tmp_path / "dirty.csv")
        write_csv(pair.clean, tmp_path / "clean.csv")
        loaded = load_pair_from_csv(tmp_path / "dirty.csv",
                                    tmp_path / "clean.csv", name="beers-csv")
        assert loaded.name == "beers-csv"
        assert loaded.dirty.shape == pair.dirty.shape
        assert loaded.errors == ()

    def test_positional_column_alignment(self, tmp_path):
        from repro.datasets import load_pair_from_csv
        (tmp_path / "d.csv").write_text("colA,colB\n1,2\n")
        (tmp_path / "c.csv").write_text("a,b\n1,9\n")
        pair = load_pair_from_csv(tmp_path / "d.csv", tmp_path / "c.csv")
        assert pair.dirty.column_names == ["a", "b"]
        assert pair.measured_error_rate() == 0.5

    def test_column_count_mismatch_rejected(self, tmp_path):
        from repro.datasets import load_pair_from_csv
        (tmp_path / "d.csv").write_text("a\n1\n")
        (tmp_path / "c.csv").write_text("a,b\n1,2\n")
        with pytest.raises(DataError):
            load_pair_from_csv(tmp_path / "d.csv", tmp_path / "c.csv")
