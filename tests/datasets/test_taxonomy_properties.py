"""Property tests for the authentic-error taxonomy's three contracts.

1. Seed determinism: same (clean table, specs, seed) -> identical dirty
   table, ledger and mask; different seeds diverge.
2. Mask exactness: the dirty table differs from the clean one at
   exactly the masked cells, never outside them.
3. Order-independent composition: specs plan against the clean table,
   so any permutation corrupts the same cell set.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    FAMILY_NAMES,
    apply_taxonomy,
    correlated,
    format_drift,
    keyboard_typo,
    missing,
    pair_from_taxonomy,
    truncation,
    value_swap,
)
from repro.datasets.errors import ErrorType
from repro.errors import DataError
from repro.table import Table

_WORDS = ("alpha", "bravo", "Charlie", "delta", "Echo", "foxtrot",
          "golf", "Hotel", "india", "Juliet")


def _clean_table(n_rows: int) -> Table:
    return Table({
        "id": [f"AB-{1000 + i}" for i in range(n_rows)],
        "date": [f"2021-0{1 + i % 9}-{10 + i % 19}" for i in range(n_rows)],
        "amount": [f"{100 + i}.{i % 10}5" for i in range(n_rows)],
        "word": [_WORDS[i % len(_WORDS)] for i in range(n_rows)],
    })


def _all_specs(rate: float):
    return [
        keyboard_typo(["word"], rate),
        correlated(["id", "word"], rate),
        format_drift(["date"], rate, kind="date"),
        format_drift(["amount"], rate, kind="number"),
        truncation(["id"], rate),
        value_swap(["amount"], rate),
        missing(["word"], rate / 2),
    ]


def _diff_mask(clean: Table, dirty: Table) -> np.ndarray:
    out = np.zeros((clean.n_rows, clean.n_cols), dtype=bool)
    for j, name in enumerate(clean.column_names):
        cv = clean.column(name).values
        dv = dirty.column(name).values
        for i in range(clean.n_rows):
            a = "" if cv[i] is None else str(cv[i])
            b = "" if dv[i] is None else str(dv[i])
            out[i, j] = a != b
    return out


@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       n_rows=st.integers(min_value=5, max_value=60),
       rate=st.floats(min_value=0.05, max_value=0.5))
@settings(max_examples=40, deadline=None)
def test_seed_determinism(seed, n_rows, rate):
    clean = _clean_table(n_rows)
    specs = _all_specs(rate)
    a = apply_taxonomy(clean, specs, seed=seed)
    b = apply_taxonomy(clean, specs, seed=seed)
    assert a.errors == b.errors
    assert np.array_equal(a.mask, b.mask)
    for name in clean.column_names:
        assert a.dirty.column(name).values == b.dirty.column(name).values


@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       n_rows=st.integers(min_value=5, max_value=60),
       rate=st.floats(min_value=0.05, max_value=0.5))
@settings(max_examples=40, deadline=None)
def test_mask_exactness(seed, n_rows, rate):
    """Cells outside the reported mask are untouched; cells inside it
    all genuinely differ from the clean original."""
    clean = _clean_table(n_rows)
    result = apply_taxonomy(clean, _all_specs(rate), seed=seed)
    assert np.array_equal(_diff_mask(clean, result.dirty), result.mask)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       n_rows=st.integers(min_value=5, max_value=40),
       rate=st.floats(min_value=0.05, max_value=0.5),
       order=st.permutations(range(7)))
@settings(max_examples=40, deadline=None)
def test_composition_order_independent_cell_set(seed, n_rows, rate, order):
    """Any spec permutation corrupts the same cell set under one seed."""
    clean = _clean_table(n_rows)
    specs = _all_specs(rate)
    baseline = apply_taxonomy(clean, specs, seed=seed)
    permuted = apply_taxonomy(clean, [specs[i] for i in order], seed=seed)
    assert np.array_equal(baseline.mask, permuted.mask)
    # Per-spec plans are identical objects regardless of position.
    by_spec = {id(specs[i]): plan for i, plan in
               zip(order, permuted.by_spec)}
    for spec, plan in zip(specs, baseline.by_spec):
        assert by_spec[id(spec)] == plan


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_seed_sensitivity(seed):
    clean = _clean_table(40)
    specs = _all_specs(0.3)
    a = apply_taxonomy(clean, specs, seed=seed)
    b = apply_taxonomy(clean, specs, seed=seed + 1)
    assert not np.array_equal(a.mask, b.mask)


def test_every_family_produces_errors():
    clean = _clean_table(60)
    result = apply_taxonomy(clean, _all_specs(0.4), seed=3)
    assert {e.family for e in result.errors} == set(FAMILY_NAMES)


def test_specs_never_touch_other_columns():
    clean = _clean_table(50)
    result = apply_taxonomy(clean, [keyboard_typo(["word"], 0.5)], seed=1)
    positions = {n: j for j, n in enumerate(clean.column_names)}
    touched = {j for j in range(clean.n_cols) if result.mask[:, j].any()}
    assert touched <= {positions["word"]}


def test_correlated_errors_hit_all_columns_of_a_row():
    clean = _clean_table(50)
    result = apply_taxonomy(clean, [correlated(["id", "word"], 0.3)], seed=5)
    rows_id = {e.row for e in result.errors if e.column == "id"}
    rows_word = {e.row for e in result.errors if e.column == "word"}
    # The donor row's value can coincide for one column; every planned
    # row must show up in at least one column, and most in both.
    assert rows_id or rows_word
    assert len(rows_id & rows_word) >= max(1, len(rows_id | rows_word) // 2)


def test_value_swap_errors_come_in_pairs():
    clean = _clean_table(40)
    result = apply_taxonomy(clean, [value_swap(["amount"], 0.5)], seed=2)
    corrupted_to_original = {}
    for e in result.errors:
        corrupted_to_original[e.row] = (e.original, e.corrupted)
    for row, (original, swapped) in corrupted_to_original.items():
        partner = next(r for r, (o, c) in corrupted_to_original.items()
                       if o == swapped and c == original and r != row)
        assert partner is not None


def test_format_drift_rewrites_are_parseable_variants():
    clean = _clean_table(50)
    result = apply_taxonomy(
        clean, [format_drift(["date"], 0.5, kind="date"),
                format_drift(["amount"], 0.5, kind="number")], seed=4)
    for e in result.errors:
        if e.column == "date":
            assert "/" in e.corrupted or "-" in e.corrupted
        else:
            assert "," in e.corrupted  # decimal comma drift


def test_truncation_yields_strict_prefixes():
    clean = _clean_table(50)
    result = apply_taxonomy(clean, [truncation(["id"], 0.5)], seed=6)
    assert result.errors
    for e in result.errors:
        assert e.original.startswith(e.corrupted)
        assert 1 <= len(e.corrupted) < len(e.original)


def test_pair_bridge_maps_families_to_paper_types():
    clean = _clean_table(50)
    pair = pair_from_taxonomy("t", clean, _all_specs(0.3), seed=7)
    assert pair.dirty.shape == clean.shape
    assert len(pair.errors) == int(
        apply_taxonomy(clean, _all_specs(0.3), seed=7).mask.sum())
    assert set(pair.error_types) <= {t.value for t in ErrorType}
    # The bridge keeps the ledger consistent with the tables.
    for error in pair.errors:
        assert pair.dirty.column(error.attribute).values[error.row] \
            == error.corrupted


def test_spec_validation():
    with pytest.raises(DataError):
        keyboard_typo([], 0.1)
    with pytest.raises(DataError):
        keyboard_typo(["word"], 1.5)
    with pytest.raises(DataError):
        correlated(["word"], 0.1)
    with pytest.raises(DataError):
        format_drift(["date"], 0.1, kind="bogus")
    with pytest.raises(DataError):
        truncation(["id"], 0.1, min_keep=0)
    with pytest.raises(DataError):
        apply_taxonomy(_clean_table(5), [], seed=0)
    with pytest.raises(DataError):
        apply_taxonomy(_clean_table(5), [keyboard_typo(["nope"], 0.1)],
                       seed=0)
