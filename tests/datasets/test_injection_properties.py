"""Property-based tests for the error injector."""

import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.errors import (
    ColumnErrorSpec,
    ErrorInjector,
    ErrorType,
    make_missing,
    typo_substitute,
)
from repro.table import Table

value = st.text(string.ascii_letters + string.digits, min_size=1, max_size=8)


@st.composite
def clean_tables(draw):
    n_rows = draw(st.integers(5, 40))
    return Table({
        "a": draw(st.lists(value, min_size=n_rows, max_size=n_rows)),
        "b": draw(st.lists(value, min_size=n_rows, max_size=n_rows)),
    })


@given(clean_tables(), st.floats(0.0, 0.4), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_measured_rate_never_exceeds_target_plus_rounding(table, rate, seed):
    injector = ErrorInjector([
        ColumnErrorSpec("a", typo_substitute, ErrorType.TYPO),
        ColumnErrorSpec("b", make_missing("NaN"), ErrorType.MISSING_VALUE),
    ])
    dirty, ledger = injector.inject(table, rate, np.random.default_rng(seed))
    budget = round(rate * table.n_rows * table.n_cols)
    assert len(ledger) <= budget


@given(clean_tables(), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_ledger_exactly_describes_diff(table, seed):
    injector = ErrorInjector([
        ColumnErrorSpec("a", typo_substitute, ErrorType.TYPO),
        ColumnErrorSpec("b", make_missing("NaN"), ErrorType.MISSING_VALUE),
    ])
    dirty, ledger = injector.inject(table, 0.2, np.random.default_rng(seed))
    changed = {
        (i, name)
        for name in table.column_names
        for i in range(table.n_rows)
        if dirty.column(name)[i] != table.column(name)[i]
    }
    assert changed == {(e.row, e.attribute) for e in ledger}


@given(clean_tables(), st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_injection_deterministic_per_seed(table, seed):
    injector = ErrorInjector([
        ColumnErrorSpec("a", typo_substitute, ErrorType.TYPO),
    ])
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    dirty_a, ledger_a = injector.inject(table, 0.15, rng_a)
    dirty_b, ledger_b = injector.inject(table, 0.15, rng_b)
    assert dirty_a == dirty_b
    assert ledger_a == ledger_b


@given(clean_tables(), st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_shape_and_schema_preserved(table, seed):
    injector = ErrorInjector([
        ColumnErrorSpec("b", make_missing(""), ErrorType.MISSING_VALUE),
    ])
    dirty, _ = injector.inject(table, 0.3, np.random.default_rng(seed))
    assert dirty.shape == table.shape
    assert dirty.column_names == table.column_names
