"""Tests for the error-injection framework."""

import numpy as np
import pytest

from repro.datasets.errors import (
    CellError,
    ColumnErrorSpec,
    ErrorInjector,
    ErrorType,
    format_add_suffix,
    format_date_prefix,
    format_decimal_suffix,
    format_strip_leading_zeros,
    format_thousands_separator,
    make_dependency_violation,
    make_missing,
    time_shift,
    typo_insert_quote,
    typo_mark_x,
    typo_substitute,
)
from repro.errors import DataError
from repro.table import Table


class TestCorruptors:
    def test_make_missing(self, rng):
        assert make_missing("NaN")("hello", {}, rng) == "NaN"

    def test_typo_mark_x_single_letter(self, rng):
        out = typo_mark_x("Birmingham", {}, rng)
        assert out != "Birmingham"
        assert sum(a != b for a, b in zip(out, "Birmingham")) == 1
        assert "x" in out.lower()

    def test_typo_mark_x_case_preserved(self, rng):
        for _ in range(10):
            out = typo_mark_x("ROME", {}, rng)
            assert out.isupper()

    def test_typo_mark_x_no_letters_noop(self, rng):
        assert typo_mark_x("12345", {}, rng) == "12345"

    def test_typo_substitute_changes_one_char(self, rng):
        out = typo_substitute("hello", {}, rng)
        assert len(out) == 5
        assert sum(a != b for a, b in zip(out, "hello")) == 1

    def test_typo_insert_quote(self, rng):
        out = typo_insert_quote("Junichi", {}, rng)
        assert len(out) > len("Junichi")

    def test_format_add_suffix(self, rng):
        assert format_add_suffix(" oz")("12.0", {}, rng) == "12.0 oz"

    def test_format_add_suffix_empty_noop(self, rng):
        assert format_add_suffix(" oz")("", {}, rng) == ""

    def test_strip_leading_zeros(self, rng):
        assert format_strip_leading_zeros("01907", {}, rng) == "1907"

    def test_strip_leading_zeros_all_zero_noop(self, rng):
        assert format_strip_leading_zeros("000", {}, rng) == "000"

    def test_thousands_separator(self, rng):
        assert format_thousands_separator("379998", {}, rng) == "379,998"
        assert format_thousands_separator("1234567", {}, rng) == "1,234,567"

    def test_thousands_separator_short_noop(self, rng):
        assert format_thousands_separator("999", {}, rng) == "999"

    def test_decimal_suffix(self, rng):
        assert format_decimal_suffix("8", {}, rng) == "8.0"
        assert format_decimal_suffix("8.5", {}, rng) == "8.5"

    def test_date_prefix(self, rng):
        out = format_date_prefix("12/02/2011 ")("6:55 a.m.", {}, rng)
        assert out == "12/02/2011 6:55 a.m."

    def test_dependency_violation_changes_value(self, rng):
        corrupt = make_dependency_violation(["CA", "NY", "TX"])
        for _ in range(10):
            assert corrupt("CA", {}, rng) in {"NY", "TX"}

    def test_dependency_violation_needs_domain(self):
        with pytest.raises(DataError):
            make_dependency_violation(["only"])

    def test_time_shift_valid_format(self, rng):
        out = time_shift("9:00 a.m.", {}, rng)
        assert out != "9:00 a.m."
        import re
        assert re.match(r"^\d{1,2}:\d{2} a\.m\.$", out)

    def test_time_shift_non_time_noop(self, rng):
        assert time_shift("not a time", {}, rng) == "not a time"


class TestErrorInjector:
    @pytest.fixture
    def clean(self):
        return Table({
            "name": [f"name{i}" for i in range(100)],
            "value": [str(i) for i in range(100)],
        })

    def test_target_rate_hit(self, clean, rng):
        injector = ErrorInjector([
            ColumnErrorSpec("name", typo_substitute, ErrorType.TYPO),
            ColumnErrorSpec("value", make_missing(), ErrorType.MISSING_VALUE),
        ])
        dirty, ledger = injector.inject(clean, 0.10, rng)
        assert len(ledger) == pytest.approx(0.10 * 200, abs=2)

    def test_ledger_matches_changes(self, clean, rng):
        injector = ErrorInjector([
            ColumnErrorSpec("name", typo_substitute, ErrorType.TYPO)])
        dirty, ledger = injector.inject(clean, 0.05, rng)
        for error in ledger:
            assert dirty.column(error.attribute)[error.row] == error.corrupted
            assert clean.column(error.attribute)[error.row] == error.original
            assert error.corrupted != error.original

    def test_untouched_cells_identical(self, clean, rng):
        injector = ErrorInjector([
            ColumnErrorSpec("name", typo_substitute, ErrorType.TYPO)])
        dirty, ledger = injector.inject(clean, 0.05, rng)
        touched = {(e.row, e.attribute) for e in ledger}
        for i in range(clean.n_rows):
            for attr in clean.column_names:
                if (i, attr) not in touched:
                    assert dirty.column(attr)[i] == clean.column(attr)[i]

    def test_weights_respected(self, clean, rng):
        injector = ErrorInjector([
            ColumnErrorSpec("name", typo_substitute, ErrorType.TYPO, weight=9.0),
            ColumnErrorSpec("value", make_missing(), ErrorType.MISSING_VALUE,
                            weight=1.0),
        ])
        _, ledger = injector.inject(clean, 0.2, rng)
        typos = sum(1 for e in ledger if e.error_type is ErrorType.TYPO)
        missings = len(ledger) - typos
        assert typos > missings * 3

    def test_no_double_corruption(self, clean, rng):
        injector = ErrorInjector([
            ColumnErrorSpec("name", typo_substitute, ErrorType.TYPO),
            ColumnErrorSpec("name", make_missing(), ErrorType.MISSING_VALUE),
        ])
        _, ledger = injector.inject(clean, 0.5, rng)
        cells = [(e.row, e.attribute) for e in ledger]
        assert len(cells) == len(set(cells))

    def test_zero_rate_no_errors(self, clean, rng):
        injector = ErrorInjector([
            ColumnErrorSpec("name", typo_substitute, ErrorType.TYPO)])
        dirty, ledger = injector.inject(clean, 0.0, rng)
        assert ledger == ()
        assert dirty == clean

    def test_noop_corruptions_skipped(self, rng):
        """A corruptor that never changes anything yields no ledger entries."""
        clean = Table({"a": ["000"] * 20})
        injector = ErrorInjector([
            ColumnErrorSpec("a", format_strip_leading_zeros,
                            ErrorType.FORMATTING_ISSUE)])
        dirty, ledger = injector.inject(clean, 0.5, rng)
        assert ledger == ()
        assert dirty == clean

    def test_validation(self, clean, rng):
        with pytest.raises(DataError):
            ErrorInjector([])
        with pytest.raises(DataError):
            ErrorInjector([ColumnErrorSpec("ghost", typo_substitute,
                                           ErrorType.TYPO)]).inject(clean, 0.1, rng)
        injector = ErrorInjector([
            ColumnErrorSpec("name", typo_substitute, ErrorType.TYPO)])
        with pytest.raises(DataError):
            injector.inject(clean, 1.0, rng)
        with pytest.raises(DataError):
            ErrorInjector([ColumnErrorSpec("name", typo_substitute,
                                           ErrorType.TYPO, weight=0.0)])
