"""Tests for the Trainer and batching."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    Dense,
    EarlyStopping,
    RMSprop,
    SGD,
    Trainer,
    softmax_cross_entropy_with_logits,
)
from repro.nn.module import Module
from repro.nn.training import iterate_batches, predict_proba
from repro.autograd import softmax


class DictDense(Module):
    """Adapter: Dense over the 'x' feature (softmax output)."""

    def __init__(self, rng, in_dim=2, out_dim=2):
        super().__init__()
        self.dense = Dense(in_dim, out_dim, rng, activation="softmax")

    def forward(self, features):
        from repro.autograd import Tensor
        return self.dense(Tensor(features["x"]))


def loss_fn(probs, labels):
    eps = 1e-9
    return softmax_cross_entropy_with_logits((probs + eps).log(), labels)


@pytest.fixture
def xor_like(rng):
    """A linearly separable 2-d problem."""
    x = rng.normal(size=(80, 2))
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return {"x": x}, y


class TestIterateBatches:
    def test_covers_all_rows(self):
        batches = list(iterate_batches({"x": np.arange(10)[:, None]},
                                       np.arange(10), batch_size=3))
        assert [b.size for b in batches] == [3, 3, 3, 1]

    def test_shuffle_with_rng(self, rng):
        features = {"x": np.arange(10)[:, None]}
        labels = np.arange(10)
        batches = list(iterate_batches(features, labels, 10, rng=rng))
        assert not (batches[0].labels == np.arange(10)).all()
        assert sorted(batches[0].labels) == list(range(10))

    def test_features_and_labels_aligned(self, rng):
        features = {"x": np.arange(10)[:, None]}
        labels = np.arange(10)
        for batch in iterate_batches(features, labels, 4, rng=rng):
            np.testing.assert_array_equal(batch.features["x"][:, 0],
                                          batch.labels)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            list(iterate_batches({"x": np.zeros((3, 1))}, np.zeros(2), 2))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            list(iterate_batches({"x": np.zeros((0, 1))}, np.zeros(0), 2))

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            list(iterate_batches({"x": np.zeros((3, 1))}, np.zeros(3), 0))


class TestTrainer:
    def test_loss_decreases(self, rng, xor_like):
        features, labels = xor_like
        model = DictDense(rng)
        trainer = Trainer(model=model, optimizer=SGD(model.parameters(), 0.5),
                          loss_fn=loss_fn, rng=rng)
        history = trainer.fit(features, labels, epochs=30, batch_size=20)
        losses = history.series("loss")
        assert losses[-1] < losses[0] * 0.7

    def test_history_has_one_entry_per_epoch(self, rng, xor_like):
        features, labels = xor_like
        model = DictDense(rng)
        trainer = Trainer(model=model, optimizer=SGD(model.parameters(), 0.1),
                          loss_fn=loss_fn)
        history = trainer.fit(features, labels, epochs=5, batch_size=20)
        assert len(history.epochs) == 5

    def test_early_stopping_halts(self, rng, xor_like):
        features, labels = xor_like
        model = DictDense(rng)
        stopper = EarlyStopping(patience=1, min_delta=1e9)  # stop asap
        trainer = Trainer(model=model, optimizer=SGD(model.parameters(), 0.1),
                          loss_fn=loss_fn, callbacks=(stopper,))
        history = trainer.fit(features, labels, epochs=50, batch_size=20)
        assert len(history.epochs) <= 3

    def test_predict_proba_shape_and_distribution(self, rng, xor_like):
        features, labels = xor_like
        model = DictDense(rng)
        trainer = Trainer(model=model,
                          optimizer=RMSprop(model.parameters(), 0.01),
                          loss_fn=loss_fn)
        trainer.fit(features, labels, epochs=3, batch_size=20)
        probs = trainer.predict_proba(features)
        assert probs.shape == (80, 2)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_learns_separable_problem(self, rng, xor_like):
        features, labels = xor_like
        model = DictDense(rng)
        trainer = Trainer(model=model, optimizer=SGD(model.parameters(), 0.5),
                          loss_fn=loss_fn, rng=rng)
        trainer.fit(features, labels, epochs=60, batch_size=20)
        accuracy = (trainer.predict_proba(features).argmax(1) == labels).mean()
        assert accuracy > 0.95

    def test_invalid_epochs_rejected(self, rng, xor_like):
        features, labels = xor_like
        model = DictDense(rng)
        trainer = Trainer(model=model, optimizer=SGD(model.parameters(), 0.1),
                          loss_fn=loss_fn)
        with pytest.raises(ConfigurationError):
            trainer.fit(features, labels, epochs=0, batch_size=8)

    def test_gradient_clipping_optional(self, rng, xor_like):
        features, labels = xor_like
        model = DictDense(rng)
        trainer = Trainer(model=model, optimizer=SGD(model.parameters(), 0.1),
                          loss_fn=loss_fn, max_grad_norm=None)
        trainer.fit(features, labels, epochs=2, batch_size=20)  # no crash


class TestPredictProba:
    def test_chunking_matches_single_pass(self, rng, xor_like):
        features, _ = xor_like
        model = DictDense(rng)
        a = predict_proba(model, features, batch_size=7)
        b = predict_proba(model, features, batch_size=500)
        np.testing.assert_allclose(a, b)

    def test_eval_mode_not_required_for_detachment(self, rng, xor_like):
        features, _ = xor_like
        model = DictDense(rng)
        probs = predict_proba(model, features)
        assert probs.shape[0] == 80
