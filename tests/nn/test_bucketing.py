"""Tests for length-bucketed batching and padding-aware inference.

The contract under test (see :mod:`repro.nn.training` and
:mod:`repro.nn.kernels`): trimming a batch's padded tail only removes
steps that are padding for *every* row, so

* forward values are bit-for-bit identical to the full-padding path, and
* training trajectories agree up to float accumulation order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.models import ModelConfig
from repro.models.tsb_rnn import TSBRNN
from repro.nn import (
    BucketBatchSampler,
    RMSprop,
    Trainer,
    use_backend,
)
from repro.nn.training import predict_proba

TINY = ModelConfig(char_embed_dim=5, value_units=6, num_layers=2,
                   head_units=7)

VOCAB = 12


def skewed_dataset(n=48, max_length=40, seed=0):
    """Padded index sequences with heavily skewed true lengths.

    Most values are short (as in the benchmark datasets' name/city/state
    columns), a few are near the dataset-wide maximum -- the regime where
    full padding wastes the most work.
    """
    rng = np.random.default_rng(seed)
    short = rng.integers(2, 8, size=int(n * 0.8))
    long = rng.integers(max_length - 6, max_length + 1, size=n - short.shape[0])
    lengths = np.concatenate([short, long])
    rng.shuffle(lengths)
    values = np.zeros((n, max_length), dtype=np.int64)
    for i, ell in enumerate(lengths):
        values[i, :ell] = rng.integers(1, VOCAB, size=ell)
    labels = rng.integers(0, 2, size=n).astype(np.int64)
    return {"values": values}, labels, lengths.astype(np.int64)


class TestBucketBatchSampler:
    def test_invalid_n_buckets(self):
        with pytest.raises(ConfigurationError):
            BucketBatchSampler(n_buckets=0)

    @pytest.mark.parametrize("edges", [(), (0, 4), (4, 4), (8, 4)])
    def test_invalid_edges(self, edges):
        with pytest.raises(ConfigurationError):
            BucketBatchSampler(edges=edges)

    def test_lengths_row_mismatch_rejected(self):
        features, labels, _ = skewed_dataset(n=8)
        sampler = BucketBatchSampler()
        with pytest.raises(ConfigurationError):
            list(sampler.batches(features, labels, np.arange(5), 4))

    def test_auto_edges_cover_max_and_dedup(self):
        lengths = np.array([3, 3, 3, 3, 3, 30])
        edges = BucketBatchSampler(n_buckets=4).resolve_edges(lengths)
        assert edges == tuple(sorted(set(edges)))
        assert edges[-1] >= 30
        # Five of six values are identical: quantile dedup leaves fewer
        # buckets than requested rather than empty ones.
        assert len(edges) <= 4

    def test_explicit_edges_kept(self):
        sampler = BucketBatchSampler(edges=(4, 16))
        assert sampler.resolve_edges(np.array([1, 2, 3])) == (4, 16)

    def test_overflow_bucket_covers_long_examples(self):
        features, labels, lengths = skewed_dataset()
        sampler = BucketBatchSampler(edges=(4,))  # everything above 4 overflows
        seen = np.concatenate([
            batch.labels for batch in
            sampler.batches(features, labels, lengths, 8)
        ])
        assert seen.shape[0] == labels.shape[0]

    def test_each_batch_is_length_homogeneous(self):
        features, labels, lengths = skewed_dataset()
        sampler = BucketBatchSampler(n_buckets=4)
        edges = np.asarray(sampler.resolve_edges(lengths))
        position = {}
        for i, ell in enumerate(lengths):
            position[i] = int(np.searchsorted(edges, ell, side="left"))
        # Re-run with labels = row index so batches reveal membership.
        index_labels = np.arange(labels.shape[0])
        for batch in sampler.batches(features, index_labels, lengths, 8,
                                     rng=np.random.default_rng(3)):
            buckets = {position[int(i)] for i in batch.labels}
            assert len(buckets) == 1

    def test_trims_to_batch_max_length(self):
        features, labels, lengths = skewed_dataset()
        index_labels = np.arange(labels.shape[0])
        sampler = BucketBatchSampler(n_buckets=4)
        for batch in sampler.batches(features, index_labels, lengths, 8):
            width = batch.features["values"].shape[1]
            assert width == max(int(lengths[batch.labels].max()), 1)
            # No live character is ever cut off.
            assert (lengths[batch.labels] <= width).all()

    def test_trim_false_keeps_full_width(self):
        features, labels, lengths = skewed_dataset()
        sampler = BucketBatchSampler(n_buckets=4, trim=False)
        for batch in sampler.batches(features, labels, lengths, 8):
            assert batch.features["values"].shape[1] == features["values"].shape[1]

    def test_trim_and_control_have_identical_composition(self):
        """trim only narrows arrays; batch membership/order is untouched."""
        features, labels, lengths = skewed_dataset()
        index_labels = np.arange(labels.shape[0])
        trimmed = list(BucketBatchSampler(n_buckets=4).batches(
            features, index_labels, lengths, 8, rng=np.random.default_rng(7)))
        control = list(BucketBatchSampler(n_buckets=4, trim=False).batches(
            features, index_labels, lengths, 8, rng=np.random.default_rng(7)))
        assert len(trimmed) == len(control)
        for a, b in zip(trimmed, control):
            np.testing.assert_array_equal(a.labels, b.labels)
            width = a.features["values"].shape[1]
            np.testing.assert_array_equal(a.features["values"],
                                          b.features["values"][:, :width])
            assert (b.features["values"][:, width:] == 0).all()

    def test_shuffle_changes_order_not_membership(self):
        features, labels, lengths = skewed_dataset()
        index_labels = np.arange(labels.shape[0])
        sampler = BucketBatchSampler(n_buckets=4)
        a = [b.labels.tolist() for b in sampler.batches(
            features, index_labels, lengths, 8, rng=np.random.default_rng(1))]
        b = [b.labels.tolist() for b in sampler.batches(
            features, index_labels, lengths, 8, rng=np.random.default_rng(2))]
        assert a != b  # order differs ...
        assert (sorted(i for batch in a for i in batch)
                == sorted(i for batch in b for i in batch))  # ... coverage not

    @settings(max_examples=40, deadline=None)
    @given(
        lengths=st.lists(st.integers(1, 30), min_size=1, max_size=40),
        batch_size=st.integers(1, 12),
        n_buckets=st.integers(1, 6),
        shuffle_seed=st.one_of(st.none(), st.integers(0, 99)),
    )
    def test_every_example_exactly_once_per_epoch(self, lengths, batch_size,
                                                  n_buckets, shuffle_seed):
        """Property: one epoch is an exact partition of the dataset."""
        lengths = np.asarray(lengths, dtype=np.int64)
        n = lengths.shape[0]
        values = np.zeros((n, 30), dtype=np.int64)
        for i, ell in enumerate(lengths):
            values[i, :ell] = 1
        rng = (None if shuffle_seed is None
               else np.random.default_rng(shuffle_seed))
        sampler = BucketBatchSampler(n_buckets=n_buckets)
        seen = [
            int(i) for batch in
            sampler.batches({"values": values}, np.arange(n), lengths,
                            batch_size, rng=rng)
            for i in batch.labels
        ]
        assert sorted(seen) == list(range(n))


@pytest.mark.parametrize("backend", ["fused", "graph"])
class TestBucketedEquivalence:
    """Bucketed-vs-full-padding equivalence on both compute backends."""

    def _fit(self, trim: bool, backend: str, epochs: int = 3):
        features, labels, lengths = skewed_dataset()
        model = TSBRNN(VOCAB, TINY, np.random.default_rng(11))
        trainer = Trainer(
            model=model,
            optimizer=RMSprop(model.parameters(), 0.005),
            loss_fn=lambda probs, y: None,  # models define training_loss
            rng=np.random.default_rng(5),
            batch_sampler=BucketBatchSampler(n_buckets=3, trim=trim),
        )
        with use_backend(backend):
            history = trainer.fit(features, labels, epochs=epochs,
                                  batch_size=12, lengths=lengths)
            probs = trainer.predict_proba(features)
        return history.series("loss"), probs

    def test_forward_bit_for_bit(self, backend):
        """A trimmed batch yields byte-identical probabilities."""
        features, _, lengths = skewed_dataset()
        model = TSBRNN(VOCAB, TINY, np.random.default_rng(11))
        model.eval()
        short = np.flatnonzero(lengths < 10)
        width = int(lengths[short].max())
        full = {"values": features["values"][short]}
        trimmed = {"values": features["values"][short][:, :width]}
        with use_backend(backend):
            a = model(full).numpy()
            b = model(trimmed).numpy()
        np.testing.assert_array_equal(a, b)

    def test_same_loss_trajectory(self, backend):
        """Same seed, same batches: trimming changes nothing but padding.

        Loss values agree to float accumulation order (the trimmed GEMMs
        reduce over fewer-but-identical terms in a different grouping),
        hence allclose at near-machine tolerance rather than equality.
        """
        bucketed, probs_bucketed = self._fit(trim=True, backend=backend)
        control, probs_control = self._fit(trim=False, backend=backend)
        np.testing.assert_allclose(bucketed, control, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(probs_bucketed, probs_control,
                                   rtol=1e-7, atol=1e-10)
        assert np.argmax(probs_bucketed, axis=1).tolist() \
            == np.argmax(probs_control, axis=1).tolist()

    def test_backends_agree_on_bucketed_training(self, backend):
        """Anchor both backends to one reference trajectory (fused)."""
        losses, _ = self._fit(trim=True, backend=backend, epochs=2)
        reference, _ = self._fit(trim=True, backend="fused", epochs=2)
        np.testing.assert_allclose(losses, reference, rtol=1e-9, atol=1e-12)


class TestPredictProbaLengths:
    def test_sorted_chunking_matches_plain(self):
        features, _, lengths = skewed_dataset()
        model = TSBRNN(VOCAB, TINY, np.random.default_rng(2))
        model.eval()
        plain = predict_proba(model, features, batch_size=7)
        sorted_ = predict_proba(model, features, batch_size=7,
                                lengths=lengths)
        np.testing.assert_array_equal(plain, sorted_)

    def test_lengths_mismatch_rejected(self):
        features, _, _ = skewed_dataset(n=6)
        model = TSBRNN(VOCAB, TINY, np.random.default_rng(2))
        with pytest.raises(ConfigurationError):
            predict_proba(model, features, lengths=np.arange(4))

    def test_trainer_falls_back_without_lengths(self):
        """A sampler without lengths silently uses plain iteration."""
        features, labels, _ = skewed_dataset(n=16)
        model = TSBRNN(VOCAB, TINY, np.random.default_rng(0))
        trainer = Trainer(
            model=model,
            optimizer=RMSprop(model.parameters(), 0.005),
            loss_fn=lambda probs, y: None,
            rng=np.random.default_rng(0),
            batch_sampler=BucketBatchSampler(),
        )
        history = trainer.fit(features, labels, epochs=1, batch_size=8)
        assert len(history.epochs) == 1
