"""Gradchecks and backend equivalence for the attention autograd kernels.

Mirrors ``tests/nn/test_kernels.py`` for the self-attention encoder's
two fused Functions: finite-difference gradchecks (including the
batch-of-one and length-one edge groups the duplicate-padding guards),
bitwise fused-vs-graph forward equivalence, gradient closeness at the
repo's standard tolerance, and subset invariance of the length-grouped
pooling (the bit-stability property dedup chunking relies on).
"""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck_function
from repro.nn.attention import (
    AttentionPoolFunction,
    PatternEmbedFunction,
    attention_pool,
    effective_lengths,
    pattern_embed,
)
from repro.nn.backend import use_backend

D, A = 4, 3          # embedding width, attention width
VOCAB, PATTERNS, STEPS = 7, 5, 6


def _embed_inputs(seed=0, n_rows=3, n_steps=STEPS):
    rng = np.random.default_rng(seed)
    char_w = Tensor(rng.normal(size=(VOCAB, D)), requires_grad=True)
    pat_w = Tensor(rng.normal(size=(PATTERNS, D)), requires_grad=True)
    pos_w = Tensor(rng.normal(size=(n_steps, D)), requires_grad=True)
    values = rng.integers(0, VOCAB, size=(n_rows, n_steps))
    pattern_ids = rng.integers(0, PATTERNS, size=(n_rows, n_steps))
    return char_w, pat_w, pos_w, values, pattern_ids


def _pool_inputs(lengths, seed=0):
    rng = np.random.default_rng(seed)
    lengths = np.asarray(lengths, dtype=np.int64)
    n_steps = int(lengths.max())
    x = Tensor(rng.normal(size=(lengths.size, n_steps, D)),
               requires_grad=True)
    wq = Tensor(0.5 * rng.normal(size=(D, A)), requires_grad=True)
    wk = Tensor(0.5 * rng.normal(size=(D, A)), requires_grad=True)
    wv = Tensor(0.5 * rng.normal(size=(D, A)), requires_grad=True)
    return x, wq, wk, wv, lengths, 1.0 / np.sqrt(A)


class TestGradchecks:
    def test_pattern_embed(self):
        gradcheck_function(PatternEmbedFunction, _embed_inputs())

    def test_pattern_embed_single_row(self):
        gradcheck_function(PatternEmbedFunction, _embed_inputs(n_rows=1))

    @pytest.mark.parametrize("lengths", [
        (3, 5, 5, 2), (4,), (1,), (1, 1, 3)],
        ids=["mixed", "batch1", "length1", "length1-group"])
    def test_attention_pool(self, lengths):
        gradcheck_function(AttentionPoolFunction, _pool_inputs(lengths))

    def test_constant_x_receives_no_gradient(self):
        x, wq, wk, wv, lengths, scale = _pool_inputs((3, 2))
        frozen = Tensor(x.data)
        out = AttentionPoolFunction.apply(frozen, wq, wk, wv, lengths, scale)
        (out * out).sum().backward()
        assert frozen.grad is None
        assert all(p.grad is not None for p in (wq, wk, wv))


class TestBackendEquivalence:
    def _run(self, backend, factory, op):
        with use_backend(backend):
            args = factory()
            out = op(*args)
            out.sum().backward()
            grads = [a.grad.copy() for a in args if isinstance(a, Tensor)]
        return out.data, grads

    @pytest.mark.parametrize("op,factory", [
        (pattern_embed, _embed_inputs),
        (attention_pool, lambda: _pool_inputs((3, 5, 5, 1, 2))),
    ], ids=["embed", "pool"])
    def test_fused_matches_graph(self, op, factory):
        fused_out, fused_grads = self._run("fused", factory, op)
        graph_out, graph_grads = self._run("graph", factory, op)
        np.testing.assert_array_equal(fused_out, graph_out)
        assert len(fused_grads) == len(graph_grads)
        for fused, graph in zip(fused_grads, graph_grads):
            np.testing.assert_allclose(fused, graph, rtol=1e-9, atol=1e-12)


class TestSubsetInvariance:
    @pytest.mark.parametrize("backend", ["fused", "graph"])
    def test_pooled_rows_do_not_depend_on_batch_composition(self, backend):
        x, wq, wk, wv, lengths, scale = _pool_inputs((3, 5, 5, 1, 2, 5),
                                                     seed=7)
        with use_backend(backend):
            full = attention_pool(x, wq, wk, wv, lengths, scale).data
            subset = np.array([4, 0, 2])
            part = attention_pool(Tensor(x.data[subset]), wq, wk, wv,
                                  lengths[subset], scale).data
        np.testing.assert_array_equal(part, full[subset])


class TestEffectiveLengths:
    def test_zero_padded_rows_counted(self):
        values = np.array([[3, 2, 0, 0], [1, 0, 0, 0], [0, 0, 0, 0]])
        np.testing.assert_array_equal(effective_lengths(values), [2, 1, 1])
