"""Tests for the optimizers: convergence and update rules."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ConfigurationError
from repro.nn import SGD, Adam, RMSprop, clip_gradients
from repro.nn.module import Parameter


def quadratic_loss(param: Parameter) -> Tensor:
    """(p - 3)^2 summed: minimised at p == 3."""
    return ((param - 3.0) ** 2).sum()


def minimize(optimizer_cls, steps=300, **kwargs):
    param = Parameter(np.array([0.0, 10.0]))
    optimizer = optimizer_cls([param], **kwargs)
    for _ in range(steps):
        optimizer.zero_grad()
        quadratic_loss(param).backward()
        optimizer.step()
    return param.data


class TestConvergence:
    def test_sgd(self):
        assert minimize(SGD, learning_rate=0.1) == pytest.approx([3.0, 3.0])

    def test_sgd_momentum(self):
        result = minimize(SGD, learning_rate=0.05, momentum=0.9)
        assert result == pytest.approx([3.0, 3.0], abs=1e-4)

    def test_rmsprop(self):
        result = minimize(RMSprop, steps=800, learning_rate=0.05)
        assert result == pytest.approx([3.0, 3.0], abs=1e-2)

    def test_adam(self):
        result = minimize(Adam, steps=800, learning_rate=0.05)
        assert result == pytest.approx([3.0, 3.0], abs=1e-2)


class TestUpdateRules:
    def test_sgd_single_step(self):
        param = Parameter(np.array([1.0]))
        param.grad = np.array([2.0])
        SGD([param], learning_rate=0.5).step()
        assert param.data[0] == pytest.approx(0.0)

    def test_rmsprop_first_step_magnitude(self):
        # First step: lr * g / (sqrt((1-rho) g^2) + eps) ~ lr / sqrt(1-rho)
        param = Parameter(np.array([0.0]))
        param.grad = np.array([4.0])
        RMSprop([param], learning_rate=0.001, rho=0.9).step()
        assert param.data[0] == pytest.approx(-0.001 / np.sqrt(0.1), rel=1e-3)

    def test_adam_first_step_is_lr(self):
        # Bias correction makes the first Adam step ~= lr * sign(grad).
        param = Parameter(np.array([0.0]))
        param.grad = np.array([123.0])
        Adam([param], learning_rate=0.01).step()
        assert param.data[0] == pytest.approx(-0.01, rel=1e-4)

    def test_none_grad_skipped(self):
        param = Parameter(np.array([1.0]))
        SGD([param], learning_rate=0.5).step()
        assert param.data[0] == 1.0

    def test_zero_grad_clears(self):
        param = Parameter(np.array([1.0]))
        param.grad = np.array([1.0])
        optimizer = SGD([param])
        optimizer.zero_grad()
        assert param.grad is None


class TestValidation:
    def test_empty_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD([], learning_rate=0.1)

    def test_bad_learning_rate(self):
        with pytest.raises(ConfigurationError):
            SGD([Parameter(np.zeros(1))], learning_rate=0.0)

    def test_bad_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD([Parameter(np.zeros(1))], momentum=1.0)

    def test_bad_rho(self):
        with pytest.raises(ConfigurationError):
            RMSprop([Parameter(np.zeros(1))], rho=1.0)

    def test_bad_betas(self):
        with pytest.raises(ConfigurationError):
            Adam([Parameter(np.zeros(1))], beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam([Parameter(np.zeros(1))], beta2=-0.1)


class TestClipGradients:
    def test_norm_reported(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([3.0, 4.0])
        assert clip_gradients([param], max_norm=100.0) == pytest.approx(5.0)

    def test_clipping_applied(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([30.0, 40.0])
        clip_gradients([param], max_norm=5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(5.0)

    def test_below_threshold_untouched(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([1.0, 1.0])
        clip_gradients([param], max_norm=10.0)
        np.testing.assert_array_equal(param.grad, [1.0, 1.0])

    def test_global_norm_across_parameters(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        clip_gradients([a, b], max_norm=1.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0)

    def test_bad_max_norm(self):
        with pytest.raises(ConfigurationError):
            clip_gradients([Parameter(np.zeros(1))], max_norm=0.0)
