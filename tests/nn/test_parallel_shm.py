"""Shared-memory weight broadcast: lifecycle, identity, and crash safety.

``SharedWeights.publish`` is a zero-copy broadcast versioned by
``Module.weights_version``: republishing an unchanged model is free, a
version bump swaps the segment atomically, and every exit path --
``close``, context-manager ``__exit__``, pool shutdown, even a simulated
crash mid-publish -- must leave no segment behind in ``/dev/shm``.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, WorkerKilled, use_plan
from repro.models import ModelConfig
from repro.models.etsb_rnn import ETSBRNN
from repro.nn.parallel import (
    SharedModelPool,
    SharedWeights,
    attach_segment,
    live_segment_names,
)

VOCAB = 12
N_ATTRS = 3
MAX_LEN = 8
TINY = ModelConfig(char_embed_dim=6, value_units=5, num_layers=1,
                   attr_embed_dim=3, attr_units=3, length_dense_units=4,
                   head_units=4)


@pytest.fixture()
def model():
    m = ETSBRNN(VOCAB, N_ATTRS + 1, TINY, np.random.default_rng(3))
    m.eval()
    return m


def _features(rng, n_rows=10):
    lengths = rng.integers(1, MAX_LEN + 1, size=n_rows)
    values = np.zeros((n_rows, MAX_LEN), dtype=np.int64)
    for i, ell in enumerate(lengths):
        values[i, :ell] = rng.integers(1, VOCAB, size=ell)
    return {
        "values": values,
        "attributes": rng.integers(1, N_ATTRS + 1, size=n_rows),
        "length_norm": (lengths / MAX_LEN).reshape(-1, 1),
    }


class TestPublishLifecycle:
    def test_round_trip_preserves_every_tensor(self, model):
        with SharedWeights(model) as shared:
            manifest = shared.publish()
            state = dict(model.named_parameters())
            segment, views = attach_segment(manifest)
            try:
                for name, param in state.items():
                    np.testing.assert_array_equal(views[name], param.data)
                assert set(views) >= set(state)
            finally:
                segment.close()

    def test_republish_without_version_bump_is_a_no_op(self, model):
        with SharedWeights(model) as shared:
            first = shared.publish()
            second = shared.publish()
            assert second is first
            assert live_segment_names().count(first["name"]) == 1

    def test_version_bump_swaps_the_segment(self, model):
        with SharedWeights(model) as shared:
            first = shared.publish()
            model.classifier.kernel.data += 0.5
            model.mark_weights_updated()
            second = shared.publish()
            assert second["name"] != first["name"]
            assert second["version"] > first["version"]
            names = live_segment_names()
            assert first["name"] not in names  # old version unlinked
            assert second["name"] in names
            segment, views = attach_segment(second)
            try:
                np.testing.assert_array_equal(
                    views["classifier.kernel"], model.classifier.kernel.data)
            finally:
                segment.close()

    def test_close_unlinks_and_is_idempotent(self, model):
        shared = SharedWeights(model)
        manifest = shared.publish()
        assert manifest["name"] in live_segment_names()
        shared.close()
        shared.close()
        assert manifest["name"] not in live_segment_names()
        with pytest.raises(FileNotFoundError):
            attach_segment(manifest)

    def test_reader_close_does_not_unlink(self, model):
        """Attaching is tracker-invisible: a reader closing its mapping
        must not tear the publisher's segment down."""
        with SharedWeights(model) as shared:
            manifest = shared.publish()
            segment, _ = attach_segment(manifest)
            segment.close()
            again, views = attach_segment(manifest)
            try:
                assert views  # still attachable after a reader went away
            finally:
                again.close()


@pytest.mark.chaos
class TestBroadcastCrashSafety:
    def test_killed_broadcast_leaks_no_segment(self, model):
        shared = SharedWeights(model)
        before = live_segment_names()
        plan = FaultPlan([FaultSpec("parallel.broadcast", "kill")])
        with use_plan(plan):
            with pytest.raises(WorkerKilled):
                shared.publish()
        assert live_segment_names() == before
        assert shared.segment_name is None
        # The publisher recovers once the fault clears.
        manifest = shared.publish()
        assert manifest["name"] in live_segment_names()
        shared.close()

    def test_killed_rebroadcast_keeps_no_stale_segment(self, model):
        shared = SharedWeights(model)
        first = shared.publish()
        model.mark_weights_updated()
        plan = FaultPlan([FaultSpec("parallel.broadcast", "kill")])
        with use_plan(plan):
            with pytest.raises(WorkerKilled):
                shared.publish()
        # The aborted new segment is gone; the previous one still serves.
        names = live_segment_names()
        assert first["name"] in names
        assert shared.segment_name == first["name"]
        shared.close()
        assert live_segment_names() == ()


class TestSharedModelPool:
    def test_pool_matches_in_process_forward_bit_for_bit(self, model):
        rng = np.random.default_rng(0)
        chunks = [_features(rng) for _ in range(3)]
        expected = [model(chunk).numpy() for chunk in chunks]
        with SharedModelPool(model, workers=2) as pool:
            results = pool.map_chunks(chunks)
        for got, want in zip(results, expected):
            assert got.tobytes() == want.tobytes()

    def test_weight_update_reaches_the_workers(self, model):
        rng = np.random.default_rng(1)
        chunk = _features(rng)
        with SharedModelPool(model, workers=2) as pool:
            [before] = pool.map_chunks([chunk])
            model.classifier.kernel.data += 0.5
            model.mark_weights_updated()
            [after] = pool.map_chunks([chunk])
            expected = model(chunk).numpy()
        assert not np.array_equal(after, before)
        assert after.tobytes() == expected.tobytes()

    def test_shutdown_unlinks_the_segment(self, model):
        pool = SharedModelPool(model, workers=2)
        pool.map_chunks([_features(np.random.default_rng(2))])
        name = pool.segment_name
        assert name in live_segment_names()
        pool.shutdown()
        assert name not in live_segment_names()
