"""Hypothesis properties for the repo's two big equivalence contracts.

1. Backend equivalence: the fused whole-level kernels and the per-step
   graph backend compute the same function -- bit-for-bit forwards,
   numerically identical backwards -- over random shapes, masks, cell
   types and directions.
2. Inference equivalence: the dedup-memoized prediction path returns the
   same bytes as the naive chunked forward over random duplicate
   structures, including the single-row chunks where duplicate-padding
   papers over BLAS's 1-row kernel switch.

Both properties are tier-1 (``pytest -m equivalence`` selects them plus
the parametrized equivalence suites).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.inference import InferenceEngine, PredictionCache
from repro.models import ModelConfig
from repro.models.etsb_rnn import ETSBRNN
from repro.nn import StackedRNN, use_backend
from repro.nn.layers.rnn import CELL_TYPES
from repro.nn.training import predict_proba

pytestmark = pytest.mark.equivalence

VOCAB = 12
N_ATTRS = 3
MAX_LEN = 10
TINY = ModelConfig(char_embed_dim=6, value_units=5, num_layers=1,
                   attr_embed_dim=3, attr_units=3, length_dense_units=4,
                   head_units=4)


@pytest.fixture(scope="module")
def model():
    m = ETSBRNN(VOCAB, N_ATTRS + 1, TINY, np.random.default_rng(3))
    m.eval()
    return m


def _random_mask(rng, batch, steps):
    """A ragged-length mask: every row live for a random prefix."""
    lengths = rng.integers(1, steps + 1, size=batch)
    return np.arange(steps)[None, :] < lengths[:, None]


def _run_backend(backend, cell_type, reverse, x_data, mask, seed):
    rnn = StackedRNN(x_data.shape[2], 5, np.random.default_rng(seed),
                     num_layers=2, reverse=reverse, cell_type=cell_type)
    x = Tensor(x_data.copy(), requires_grad=True)
    with use_backend(backend):
        final, _ = rnn.run(x, mask=mask)
        (final ** 2).sum().backward()
    return (final.data.copy(),
            [x.grad.copy()] + [p.grad.copy() for p in rnn.parameters()])


class TestFusedGraphProperty:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000),
           batch=st.integers(1, 5),
           steps=st.integers(1, 7),
           features=st.integers(1, 4),
           cell_index=st.integers(0, len(CELL_TYPES) - 1),
           reverse=st.booleans(),
           masked=st.booleans())
    def test_forward_and_backward_agree(self, seed, batch, steps, features,
                                        cell_index, reverse, masked):
        rng = np.random.default_rng(seed)
        x_data = rng.normal(size=(batch, steps, features))
        mask = _random_mask(rng, batch, steps) if masked else None
        cell_type = CELL_TYPES[cell_index]
        fused_out, fused_grads = _run_backend("fused", cell_type, reverse,
                                              x_data, mask, seed)
        graph_out, graph_grads = _run_backend("graph", cell_type, reverse,
                                              x_data, mask, seed)
        np.testing.assert_array_equal(fused_out, graph_out)
        assert len(fused_grads) == len(graph_grads)
        for fused_grad, graph_grad in zip(fused_grads, graph_grads):
            np.testing.assert_allclose(fused_grad, graph_grad,
                                       rtol=1e-9, atol=1e-12)


def _pool_features(rng, n_unique, n_rows):
    """Rows drawn from a pool of ``n_unique`` distinct cells."""
    pool_lengths = rng.integers(1, MAX_LEN + 1, size=n_unique)
    pool_values = np.zeros((n_unique, MAX_LEN), dtype=np.int64)
    for i, ell in enumerate(pool_lengths):
        pool_values[i, :ell] = rng.integers(1, VOCAB, size=ell)
    pool_attrs = rng.integers(1, N_ATTRS + 1, size=n_unique)
    picks = rng.integers(0, n_unique, size=n_rows)
    features = {
        "values": pool_values[picks],
        "attributes": pool_attrs[picks],
        "length_norm": (pool_lengths[picks] / MAX_LEN).reshape(-1, 1),
    }
    return features, pool_lengths[picks].astype(np.int64)


class TestDedupNaiveProperty:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000),
           n_unique=st.integers(1, 8),
           n_rows=st.integers(1, 30),
           batch_size=st.integers(1, 9),
           use_lengths=st.booleans(),
           use_cache=st.booleans())
    def test_dedup_matches_naive_bytes(self, model, seed, n_unique, n_rows,
                                       batch_size, use_lengths, use_cache):
        rng = np.random.default_rng(seed)
        features, lengths = _pool_features(rng, n_unique, n_rows)
        naive = predict_proba(model, features, batch_size=batch_size,
                              deduplicate=False)
        engine = InferenceEngine(
            model, cache=PredictionCache() if use_cache else None,
            batch_size=batch_size)
        dedup = engine.predict_proba(
            features, lengths=lengths if use_lengths else None)
        assert naive.tobytes() == dedup.tobytes()
        assert engine.last_stats.n_rows == n_rows
        assert engine.last_stats.n_unique <= min(n_unique, n_rows)

    def test_single_row_duplicate_padding_edge(self, model):
        """batch_size=1 forces every chunk through the duplicate-padded
        1-row path on both the naive and the dedup engine."""
        rng = np.random.default_rng(11)
        features, lengths = _pool_features(rng, 4, 9)
        naive_wide = predict_proba(model, features, batch_size=64,
                                   deduplicate=False)
        naive_single = predict_proba(model, features, batch_size=1,
                                     deduplicate=False)
        engine = InferenceEngine(model, cache=PredictionCache(),
                                 batch_size=1)
        dedup_single = engine.predict_proba(features, lengths=lengths)
        assert naive_wide.tobytes() == naive_single.tobytes()
        assert naive_wide.tobytes() == dedup_single.tobytes()
