"""Tests for BatchNorm1d."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.errors import ConfigurationError
from repro.nn import BatchNorm1d


class TestTrainingMode:
    def test_output_standardized(self, rng):
        norm = BatchNorm1d(3)
        x = Tensor(rng.normal(5.0, 3.0, size=(64, 3)))
        out = norm(x).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_gamma_beta_applied(self, rng):
        norm = BatchNorm1d(2)
        norm.gamma.data[:] = 2.0
        norm.beta.data[:] = 5.0
        out = norm(Tensor(rng.normal(size=(32, 2)))).data
        assert out.mean(axis=0) == pytest.approx([5.0, 5.0], abs=1e-8)

    def test_running_stats_updated(self, rng):
        norm = BatchNorm1d(2, momentum=0.5)
        x = Tensor(np.full((8, 2), 10.0))
        norm(x)
        assert (norm.buffer("running_mean") == 5.0).all()  # 0.5*0 + 0.5*10

    def test_gradcheck(self, rng):
        norm = BatchNorm1d(3)
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        weights = Tensor(rng.normal(size=(5, 3)))
        check_gradients(lambda: (norm(x) * weights).sum(),
                        [x, norm.gamma, norm.beta], atol=1e-4)


class TestEvalMode:
    def test_uses_running_stats(self, rng):
        norm = BatchNorm1d(2, momentum=1.0)
        train_x = Tensor(rng.normal(3.0, 2.0, size=(256, 2)))
        norm(train_x)  # capture stats
        norm.eval()
        out = norm(train_x).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=0.05)

    def test_single_sample_prediction_works(self, rng):
        norm = BatchNorm1d(3)
        norm(Tensor(rng.normal(size=(16, 3))))
        norm.eval()
        out = norm(Tensor(np.ones((1, 3))))
        assert out.shape == (1, 3)
        assert np.isfinite(out.data).all()

    def test_eval_deterministic(self, rng):
        norm = BatchNorm1d(2)
        norm(Tensor(rng.normal(size=(8, 2))))
        norm.eval()
        x = Tensor(np.ones((4, 2)))
        np.testing.assert_array_equal(norm(x).data, norm(x).data)

    def test_eval_does_not_update_stats(self, rng):
        norm = BatchNorm1d(2)
        norm.eval()
        before = norm.buffer("running_mean").copy()
        norm(Tensor(rng.normal(size=(8, 2))))
        np.testing.assert_array_equal(norm.buffer("running_mean"), before)


class TestValidation:
    def test_bad_features_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchNorm1d(0)

    def test_bad_momentum_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchNorm1d(2, momentum=0.0)

    def test_wrong_input_shape_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            BatchNorm1d(3)(Tensor(np.ones((2, 4))))

    def test_stats_in_state_dict(self, rng):
        norm = BatchNorm1d(2)
        norm(Tensor(rng.normal(size=(8, 2))))
        state = norm.state_dict()
        assert "buffer:running_mean" in state
        fresh = BatchNorm1d(2)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh.buffer("running_mean"),
                                      norm.buffer("running_mean"))
