"""Tests for Dense, Embedding, Dropout, Sequential and initializers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ConfigurationError
from repro.nn import Dense, Dropout, Embedding, Sequential
from repro.nn.init import glorot_uniform, orthogonal, uniform, zeros


class TestInitializers:
    def test_zeros(self):
        assert (zeros((3, 2)) == 0).all()

    def test_uniform_bounds(self, rng):
        w = uniform(rng, (100,), low=-0.1, high=0.1)
        assert (np.abs(w) <= 0.1).all()

    def test_glorot_limit(self, rng):
        w = glorot_uniform(rng, (50, 50))
        limit = np.sqrt(6.0 / 100)
        assert (np.abs(w) <= limit).all()

    def test_glorot_needs_2d(self, rng):
        with pytest.raises(ConfigurationError):
            glorot_uniform(rng, (5,))

    def test_orthogonal_square(self, rng):
        w = orthogonal(rng, (8, 8))
        np.testing.assert_allclose(w @ w.T, np.eye(8), atol=1e-10)

    def test_orthogonal_tall(self, rng):
        w = orthogonal(rng, (8, 4))
        np.testing.assert_allclose(w.T @ w, np.eye(4), atol=1e-10)

    def test_orthogonal_wide(self, rng):
        w = orthogonal(rng, (4, 8))
        np.testing.assert_allclose(w @ w.T, np.eye(4), atol=1e-10)

    def test_orthogonal_needs_2d(self, rng):
        with pytest.raises(ConfigurationError):
            orthogonal(rng, (4, 4, 4))

    def test_deterministic_given_seed(self):
        a = glorot_uniform(np.random.default_rng(7), (3, 3))
        b = glorot_uniform(np.random.default_rng(7), (3, 3))
        np.testing.assert_array_equal(a, b)


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(4, 3, rng)
        assert layer(Tensor(np.ones((5, 4)))).shape == (5, 3)

    def test_relu_activation(self, rng):
        layer = Dense(2, 2, rng, activation="relu")
        out = layer(Tensor(np.ones((1, 2))))
        assert (out.data >= 0).all()

    def test_softmax_activation(self, rng):
        layer = Dense(3, 4, rng, activation="softmax")
        out = layer(Tensor(np.ones((2, 3))))
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0)

    def test_no_bias(self, rng):
        layer = Dense(2, 2, rng, use_bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_matches_manual(self, rng):
        layer = Dense(2, 2, rng)
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.kernel.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_unknown_activation_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="activation"):
            Dense(2, 2, rng, activation="gelu")

    def test_bad_width_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            Dense(0, 2, rng)

    def test_wrong_input_dim_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="expected last dim"):
            Dense(4, 2, rng)(Tensor(np.ones((1, 3))))

    def test_3d_input_supported(self, rng):
        layer = Dense(4, 3, rng)
        assert layer(Tensor(np.ones((2, 5, 4)))).shape == (2, 5, 3)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        layer = Embedding(10, 4, rng)
        out = layer(np.array([[1, 2, 0]]))
        assert out.shape == (1, 3, 4)

    def test_padding_mask(self, rng):
        layer = Embedding(10, 4, rng)
        mask = layer.padding_mask(np.array([[1, 0, 3]]))
        assert (mask == [[True, False, True]]).all()

    def test_mask_disabled(self, rng):
        layer = Embedding(10, 4, rng, mask_zero=False)
        assert layer.padding_mask(np.array([[0]])) is None

    def test_initial_values_bounded(self, rng):
        layer = Embedding(50, 8, rng)
        assert (np.abs(layer.weights.data) <= 0.05).all()

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            Embedding(0, 4, rng)
        with pytest.raises(ConfigurationError):
            Embedding(4, 0, rng)

    def test_trainable(self, rng):
        layer = Embedding(5, 2, rng)
        layer(np.array([1, 2])).sum().backward()
        assert layer.weights.grad is not None
        assert (layer.weights.grad[0] == 0).all()  # index 0 unused


class TestDropout:
    def test_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng).eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_zero_rate_is_identity(self, rng):
        layer = Dropout(0.0, rng)
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_training_drops_and_scales(self, rng):
        layer = Dropout(0.5, rng)
        out = layer(Tensor(np.ones((100, 100)))).data
        kept = out[out != 0]
        assert kept.size < out.size  # something dropped
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling

    def test_expected_value_preserved(self, rng):
        layer = Dropout(0.3, rng)
        out = layer(Tensor(np.ones((200, 200)))).data
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            Dropout(1.0, rng)
        with pytest.raises(ConfigurationError):
            Dropout(-0.1, rng)


class TestSequential:
    def test_chains_layers(self, rng):
        seq = Sequential(Dense(3, 5, rng, activation="relu"),
                         Dense(5, 2, rng))
        assert seq(Tensor(np.ones((4, 3)))).shape == (4, 2)

    def test_len_and_getitem(self, rng):
        seq = Sequential(Dense(2, 2, rng), Dense(2, 2, rng))
        assert len(seq) == 2
        assert isinstance(seq[0], Dense)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential()

    def test_eval_propagates_to_layers(self, rng):
        seq = Sequential(Dropout(0.5, rng)).eval()
        x = Tensor(np.ones((2, 2)))
        np.testing.assert_array_equal(seq(x).data, x.data)
