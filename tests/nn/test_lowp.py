"""Tolerance gates for the reduced-precision inference evaluators.

Float64 is the reference; the float32 evaluator must track it to a few
float32 ulps on the output probabilities, and the int8 weight-quantised
variant to a coarse-but-useful band.  The weight cast is cached per
``weights_version``: mutating weights in place without bumping the
version reuses the stale cast, and ``mark_weights_updated`` refreshes
it.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import ModelConfig
from repro.models.etsb_rnn import ETSBRNN
from repro.models.tsb_rnn import TSBRNN
from repro.nn.lowp import LOWP_MODES, PRECISION_MODES, LowPrecisionEvaluator
from repro.nn.training import predict_proba

VOCAB = 12
N_ATTRS = 3
MAX_LEN = 10
TINY = ModelConfig(char_embed_dim=6, value_units=5, num_layers=1,
                   attr_embed_dim=3, attr_units=3, length_dense_units=4,
                   head_units=4)

#: Output-probability tolerance per mode, against the float64 forward.
ATOL = {"float32": 1e-5, "int8": 0.05}


def _features(rng, n_rows=24):
    lengths = rng.integers(1, MAX_LEN + 1, size=n_rows)
    values = np.zeros((n_rows, MAX_LEN), dtype=np.int64)
    for i, ell in enumerate(lengths):
        values[i, :ell] = rng.integers(1, VOCAB, size=ell)
    return {
        "values": values,
        "attributes": rng.integers(1, N_ATTRS + 1, size=n_rows),
        "length_norm": (lengths / MAX_LEN).reshape(-1, 1),
    }


def _model(kind, seed=3):
    rng = np.random.default_rng(seed)
    if kind == "etsb":
        model = ETSBRNN(VOCAB, N_ATTRS + 1, TINY, rng)
    else:
        model = TSBRNN(VOCAB, TINY, rng)
    model.eval()
    return model


class TestToleranceGates:
    @pytest.mark.parametrize("kind", ["tsb", "etsb"])
    @pytest.mark.parametrize("mode", LOWP_MODES)
    def test_probabilities_track_the_float64_reference(self, kind, mode):
        model = _model(kind)
        features = _features(np.random.default_rng(0))
        reference = predict_proba(model, features, deduplicate=False)
        lowp = LowPrecisionEvaluator(model, mode).predict_proba(features)
        assert lowp.dtype == np.float32
        assert lowp.shape == reference.shape
        np.testing.assert_allclose(lowp, reference, atol=ATOL[mode])

    @pytest.mark.parametrize("mode", LOWP_MODES)
    def test_rows_remain_probability_distributions(self, mode):
        model = _model("etsb")
        probs = LowPrecisionEvaluator(model, mode).predict_proba(
            _features(np.random.default_rng(1)))
        assert (probs >= 0.0).all()
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-5)

    def test_float32_is_tighter_than_int8(self):
        model = _model("etsb")
        features = _features(np.random.default_rng(2))
        reference = predict_proba(model, features, deduplicate=False)
        errs = {mode: np.abs(LowPrecisionEvaluator(model, mode)
                             .predict_proba(features) - reference).max()
                for mode in LOWP_MODES}
        assert errs["float32"] <= errs["int8"]


class TestWeightCastCache:
    def test_cast_reused_until_version_bump(self):
        model = _model("etsb")
        features = _features(np.random.default_rng(4))
        evaluator = LowPrecisionEvaluator(model, "float32")
        before = evaluator.predict_proba(features)
        # In-place mutation without a version bump: stale cast is reused.
        kernel = model.classifier.kernel
        original = kernel.data.copy()
        kernel.data += 1.0
        np.testing.assert_array_equal(
            evaluator.predict_proba(features), before)
        model.mark_weights_updated()
        shifted = evaluator.predict_proba(features)
        assert not np.array_equal(shifted, before)
        kernel.data[...] = original
        model.mark_weights_updated()
        np.testing.assert_array_equal(
            evaluator.predict_proba(features), before)


class TestConfiguration:
    def test_mode_must_be_a_lowp_mode(self):
        with pytest.raises(ConfigurationError):
            LowPrecisionEvaluator(_model("tsb"), "float64")
        with pytest.raises(ConfigurationError):
            LowPrecisionEvaluator(_model("tsb"), "bfloat16")

    def test_unsupported_model_rejected(self):
        with pytest.raises(ConfigurationError):
            LowPrecisionEvaluator(object(), "float32")

    def test_mode_tuples_are_consistent(self):
        assert set(LOWP_MODES) == set(PRECISION_MODES) - {"float64"}
