"""Tests for the loss functions."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, softmax
from repro.errors import ShapeError
from repro.nn import (
    binary_cross_entropy,
    categorical_cross_entropy,
    softmax_cross_entropy_with_logits,
)
from repro.nn.losses import one_hot


class TestBinaryCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        loss = binary_cross_entropy(Tensor([1.0, 0.0]), np.array([1, 0]))
        assert loss.item() < 1e-10

    def test_wrong_prediction_large(self):
        loss = binary_cross_entropy(Tensor([0.0, 1.0]), np.array([1, 0]))
        assert loss.item() > 10

    def test_half_probability(self):
        loss = binary_cross_entropy(Tensor([0.5]), np.array([1]))
        assert loss.item() == pytest.approx(np.log(2))

    def test_no_nan_at_extremes(self):
        loss = binary_cross_entropy(Tensor([0.0, 1.0]), np.array([0, 1]))
        assert np.isfinite(loss.item())

    def test_gradcheck(self, rng):
        p = Tensor(rng.uniform(0.2, 0.8, size=4), requires_grad=True)
        y = np.array([1, 0, 1, 0])
        check_gradients(lambda: binary_cross_entropy(p, y), [p])


class TestCategoricalCrossEntropy:
    def test_matches_binary_for_two_classes(self):
        probs = np.array([[0.7, 0.3], [0.2, 0.8]])
        labels = np.array([0, 1])
        cce = categorical_cross_entropy(Tensor(probs), one_hot(labels, 2))
        bce = binary_cross_entropy(Tensor(probs[:, 1]), labels)
        assert cce.item() == pytest.approx(bce.item())

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            categorical_cross_entropy(Tensor(np.ones((2, 3))),
                                      np.ones((2, 2)))

    def test_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = one_hot(np.array([0, 2, 3]), 4)
        check_gradients(
            lambda: categorical_cross_entropy(softmax(logits), targets),
            [logits])


class TestSoftmaxCrossEntropyWithLogits:
    def test_agrees_with_two_step(self, rng):
        logits_data = rng.normal(size=(4, 3))
        labels = np.array([0, 1, 2, 1])
        fused = softmax_cross_entropy_with_logits(Tensor(logits_data), labels)
        two_step = categorical_cross_entropy(
            softmax(Tensor(logits_data)), one_hot(labels, 3))
        assert fused.item() == pytest.approx(two_step.item())

    def test_stable_for_huge_logits(self):
        logits = Tensor(np.array([[1e5, -1e5]]))
        loss = softmax_cross_entropy_with_logits(logits, np.array([0]))
        assert np.isfinite(loss.item())

    def test_bad_targets_shape_rejected(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy_with_logits(Tensor(np.ones((2, 3))),
                                              np.array([[0], [1]]))

    def test_out_of_range_labels_rejected(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy_with_logits(Tensor(np.ones((2, 3))),
                                              np.array([0, 3]))

    def test_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        labels = np.array([1, 0, 3])
        check_gradients(
            lambda: softmax_cross_entropy_with_logits(logits, labels),
            [logits])


class TestOneHot:
    def test_encoding(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([3]), 3)

    def test_empty(self):
        assert one_hot(np.array([], dtype=int), 2).shape == (0, 2)
