"""Tests for the recurrent layers -- the paper's Eq. 1-4 and Figure 5."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.errors import ConfigurationError
from repro.nn import BidirectionalRNN, RNNCell, StackedRNN


class TestRNNCell:
    def test_step_shape(self, rng):
        cell = RNNCell(3, 5, rng)
        out = cell.step(Tensor(np.ones((2, 3))), cell.initial_state(2))
        assert out.shape == (2, 5)

    def test_step_matches_equations(self, rng):
        """Eq. 1-2: h = tanh(x Wx + h_prev Wh + b)."""
        cell = RNNCell(2, 3, rng)
        x = np.array([[0.5, -1.0]])
        h_prev = np.array([[0.1, 0.2, 0.3]])
        expected = np.tanh(x @ cell.w_x.data + h_prev @ cell.w_h.data
                           + cell.b_h.data)
        out = cell.step(Tensor(x), Tensor(h_prev))
        np.testing.assert_allclose(out.data, expected)

    def test_step_projected_equivalent(self, rng):
        cell = RNNCell(2, 3, rng)
        x = Tensor(np.array([[0.5, -1.0]]))
        h = Tensor(np.array([[0.1, 0.2, 0.3]]))
        proj = x @ cell.w_x + cell.b_h
        np.testing.assert_allclose(cell.step(x, h).data,
                                   cell.step_projected(proj, h).data)

    def test_initial_state_zero(self, rng):
        assert (RNNCell(2, 3, rng).initial_state(4).data == 0).all()

    def test_invalid_dims_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            RNNCell(0, 3, rng)

    def test_recurrent_kernel_orthogonal(self, rng):
        cell = RNNCell(2, 6, rng)
        np.testing.assert_allclose(cell.w_h.data @ cell.w_h.data.T,
                                   np.eye(6), atol=1e-10)


class TestStackedRNN:
    def test_final_state_shape(self, rng):
        rnn = StackedRNN(3, 5, rng, num_layers=2)
        out = rnn(Tensor(np.ones((2, 7, 3))))
        assert out.shape == (2, 5)

    def test_run_returns_per_step_states(self, rng):
        rnn = StackedRNN(3, 5, rng)
        final, steps = rnn.run(Tensor(np.ones((2, 7, 3))))
        assert len(steps) == 7
        np.testing.assert_array_equal(final.data, steps[-1].data)

    def test_reverse_final_is_first_step(self, rng):
        rnn = StackedRNN(3, 5, rng, reverse=True)
        final, steps = rnn.run(Tensor(np.ones((2, 7, 3))))
        np.testing.assert_array_equal(final.data, steps[0].data)

    def test_two_stacked_differs_from_one(self, rng):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 3)))
        one = StackedRNN(3, 4, np.random.default_rng(1), num_layers=1)
        two = StackedRNN(3, 4, np.random.default_rng(1), num_layers=2)
        assert not np.allclose(one(x).data, two(x).data)

    def test_mask_carries_state(self, rng):
        """Padded steps must not change the hidden state."""
        rnn = StackedRNN(3, 4, rng)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 5, 3)))
        mask_full = np.array([[True, True, True, False, False]])
        short = Tensor(x.data[:, :3, :])
        np.testing.assert_allclose(rnn(x, mask=mask_full).data,
                                   rnn(short).data)

    def test_mask_mixed_batch(self, rng):
        """Each row's final state matches its own unpadded run."""
        rnn = StackedRNN(2, 3, rng)
        data = np.random.default_rng(0).normal(size=(2, 4, 2))
        mask = np.array([[True, True, False, False],
                         [True, True, True, True]])
        batched = rnn(Tensor(data), mask=mask).data
        row0 = rnn(Tensor(data[0:1, :2, :])).data
        row1 = rnn(Tensor(data[1:2, :, :])).data
        np.testing.assert_allclose(batched[0], row0[0])
        np.testing.assert_allclose(batched[1], row1[0])

    def test_sequence_order_matters(self, rng):
        rnn = StackedRNN(2, 3, rng)
        data = np.random.default_rng(0).normal(size=(1, 4, 2))
        reversed_data = data[:, ::-1, :].copy()
        assert not np.allclose(rnn(Tensor(data)).data,
                               rnn(Tensor(reversed_data)).data)

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            StackedRNN(3, 4, rng)(Tensor(np.ones((2, 3))))

    def test_wrong_input_dim_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            StackedRNN(3, 4, rng)(Tensor(np.ones((2, 5, 7))))

    def test_wrong_mask_shape_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            StackedRNN(3, 4, rng)(Tensor(np.ones((2, 5, 3))),
                                  mask=np.ones((2, 4), dtype=bool))

    def test_zero_layers_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            StackedRNN(3, 4, rng, num_layers=0)

    def test_gradients_flow_through_time(self, rng):
        rnn = StackedRNN(2, 3, rng, num_layers=2)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 2)),
                   requires_grad=True)
        check_gradients(lambda: (rnn(x) ** 2).sum(),
                        [x] + rnn.parameters())

    def test_gradients_with_mask(self, rng):
        rnn = StackedRNN(2, 3, rng, num_layers=2)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 2)),
                   requires_grad=True)
        mask = np.array([[True, True, True, False],
                         [True, False, False, False]])
        check_gradients(lambda: (rnn(x, mask=mask) ** 2).sum(),
                        [x] + rnn.parameters())


class TestBidirectionalRNN:
    def test_output_dim_doubled(self, rng):
        birnn = BidirectionalRNN(3, 5, rng)
        assert birnn.output_dim == 10
        assert birnn(Tensor(np.ones((2, 4, 3)))).shape == (2, 10)

    def test_halves_are_forward_and_backward(self, rng):
        birnn = BidirectionalRNN(3, 5, rng)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 3)))
        out = birnn(x)
        np.testing.assert_allclose(out.data[:, :5], birnn.forward_rnn(x).data)
        np.testing.assert_allclose(out.data[:, 5:], birnn.backward_rnn(x).data)

    def test_palindrome_symmetry(self, rng):
        """On a time-symmetric input, forward and backward agree."""
        birnn = BidirectionalRNN(2, 4, rng)
        birnn.backward_rnn.load_state_dict(birnn.forward_rnn.state_dict())
        step = np.random.default_rng(0).normal(size=(1, 1, 2))
        x = Tensor(np.concatenate([step, step, step], axis=1))
        out = birnn(x).data
        np.testing.assert_allclose(out[:, :4], out[:, 4:])

    def test_mask_respected_both_directions(self, rng):
        birnn = BidirectionalRNN(2, 3, rng)
        data = np.random.default_rng(0).normal(size=(1, 5, 2))
        mask = np.array([[True, True, True, False, False]])
        masked = birnn(Tensor(data), mask=mask).data
        short = birnn(Tensor(data[:, :3, :])).data
        np.testing.assert_allclose(masked, short)

    def test_gradcheck(self, rng):
        birnn = BidirectionalRNN(2, 3, rng, num_layers=2)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 2)),
                   requires_grad=True)
        check_gradients(lambda: (birnn(x) ** 2).sum(),
                        [x] + birnn.parameters())
