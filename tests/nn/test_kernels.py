"""Finite-difference gradchecks for every fused sequence kernel."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck_function
from repro.autograd.ops import softmax
from repro.errors import ShapeError
from repro.nn.kernels import (
    DenseSoftmaxBCEFunction,
    GRULevelFunction,
    LSTMLevelFunction,
    RNNLevelFunction,
    dense_softmax_bce,
    gru_level,
    lstm_level,
    rnn_level,
)
from repro.nn.losses import categorical_cross_entropy, one_hot

LEVELS = {
    "rnn": (RNNLevelFunction, 1),
    "lstm": (LSTMLevelFunction, 4),
    "gru": (GRULevelFunction, 3),
}

#: Mixed-liveness mask: a fully padded step, a partially padded step.
MASK = np.array([[True, True, False], [True, False, False]])


def _level_inputs(mult, seed=0):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(2, 3, 2)), requires_grad=True)
    w_x = Tensor(0.5 * rng.normal(size=(2, 3 * mult)), requires_grad=True)
    w_h = Tensor(0.5 * rng.normal(size=(3, 3 * mult)), requires_grad=True)
    b_h = Tensor(0.1 * rng.normal(size=(3 * mult,)), requires_grad=True)
    return x, w_x, w_h, b_h


class TestLevelKernelGradients:
    @pytest.mark.parametrize("cell", sorted(LEVELS))
    @pytest.mark.parametrize("mask", [None, MASK], ids=["unmasked", "masked"])
    @pytest.mark.parametrize("reverse", [False, True], ids=["fwd", "bwd"])
    def test_gradcheck(self, cell, mask, reverse):
        function, mult = LEVELS[cell]
        gradcheck_function(function, (*_level_inputs(mult), mask, reverse))

    @pytest.mark.parametrize("cell", sorted(LEVELS))
    def test_constant_input_receives_no_gradient(self, cell):
        function, mult = LEVELS[cell]
        _, w_x, w_h, b_h = _level_inputs(mult)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 3, 2)))
        out = function.apply(x, w_x, w_h, b_h, None, False)
        (out * out).sum().backward()
        assert x.grad is None
        assert all(p.grad is not None for p in (w_x, w_h, b_h))


class TestLevelKernelShapes:
    @pytest.mark.parametrize("level", [rnn_level, lstm_level, gru_level])
    def test_output_shape(self, level):
        mult = {rnn_level: 1, lstm_level: 4, gru_level: 3}[level]
        x, w_x, w_h, b_h = _level_inputs(mult)
        assert level(x, w_x, w_h, b_h).shape == (2, 3, 3)

    def test_bad_rank_rejected(self):
        x, w_x, w_h, b_h = _level_inputs(1)
        with pytest.raises(ShapeError):
            rnn_level(Tensor(np.ones((2, 3))), w_x, w_h, b_h)

    def test_bad_mask_shape_rejected(self):
        x, w_x, w_h, b_h = _level_inputs(1)
        with pytest.raises(ShapeError):
            rnn_level(x, w_x, w_h, b_h, mask=np.ones((2, 5), dtype=bool))


class TestDenseSoftmaxBCE:
    def _inputs(self, seed=0):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2,)), requires_grad=True)
        targets = one_hot(rng.integers(0, 2, size=5), 2)
        return x, w, b, targets

    def test_gradcheck(self):
        gradcheck_function(DenseSoftmaxBCEFunction, self._inputs())

    def test_matches_graph_composition_exactly(self):
        """Bit-for-bit equal to Dense -> softmax -> categorical BCE."""
        x, w, b, targets = self._inputs()
        fused = dense_softmax_bce(x, w, b, targets)
        graph = categorical_cross_entropy(softmax(x @ w + b), targets)
        assert fused.item() == graph.item()

    def test_gradients_match_graph_composition(self):
        x, w, b, targets = self._inputs()
        dense_softmax_bce(x, w, b, targets).backward()
        fused_grads = [t.grad.copy() for t in (x, w, b)]
        for t in (x, w, b):
            t.zero_grad()
        categorical_cross_entropy(softmax(x @ w + b), targets).backward()
        for fused_grad, t in zip(fused_grads, (x, w, b)):
            np.testing.assert_allclose(fused_grad, t.grad, rtol=1e-12, atol=1e-15)

    def test_target_shape_mismatch_rejected(self):
        x, w, b, _ = self._inputs()
        with pytest.raises(ShapeError):
            dense_softmax_bce(x, w, b, np.zeros((5, 3)))

    def test_scalar_loss(self):
        x, w, b, targets = self._inputs()
        loss = dense_softmax_bce(x, w, b, targets)
        assert loss.size == 1 and np.isfinite(loss.item())
