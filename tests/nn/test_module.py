"""Tests for Module/Parameter discovery, modes and state dicts."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ConfigurationError
from repro.nn import Dense, Sequential
from repro.nn.module import Module, Parameter


class Toy(Module):
    def __init__(self, rng):
        super().__init__()
        self.w = Parameter(np.ones(3))
        self.child = Dense(2, 2, rng)
        self.register_buffer("stat", np.zeros(2))

    def forward(self, x):
        return x


class TestDiscovery:
    def test_named_parameters_recurse(self, rng):
        names = dict(Toy(rng).named_parameters())
        assert "w" in names
        assert "child.kernel" in names
        assert "child.bias" in names

    def test_parameters_flat_list(self, rng):
        assert len(Toy(rng).parameters()) == 3

    def test_n_parameters(self, rng):
        assert Toy(rng).n_parameters() == 3 + 4 + 2

    def test_children_in_lists_found(self, rng):
        seq = Sequential(Dense(2, 2, rng), Dense(2, 2, rng))
        assert len(seq.parameters()) == 4

    def test_named_buffers_recurse(self, rng):
        toy = Toy(rng)
        names = dict(toy.named_buffers())
        assert "stat" in names
        # Dense has no buffers; BatchNorm children would appear dotted.


class TestModes:
    def test_training_default(self, rng):
        assert Toy(rng).training

    def test_eval_propagates(self, rng):
        toy = Toy(rng).eval()
        assert not toy.training
        assert not toy.child.training

    def test_train_restores(self, rng):
        toy = Toy(rng).eval().train()
        assert toy.child.training


class TestBuffers:
    def test_register_and_read(self, rng):
        toy = Toy(rng)
        assert (toy.buffer("stat") == 0).all()

    def test_set_buffer(self, rng):
        toy = Toy(rng)
        toy.set_buffer("stat", np.ones(2))
        assert (toy.buffer("stat") == 1).all()

    def test_unknown_buffer_raises(self, rng):
        with pytest.raises(ConfigurationError):
            Toy(rng).buffer("nope")

    def test_set_unknown_buffer_raises(self, rng):
        with pytest.raises(ConfigurationError):
            Toy(rng).set_buffer("nope", np.ones(1))


class TestStateDict:
    def test_round_trip(self, rng):
        toy = Toy(rng)
        state = toy.state_dict()
        toy.w.data[:] = 99
        toy.set_buffer("stat", np.full(2, 7.0))
        toy.load_state_dict(state)
        assert (toy.w.data == 1).all()
        assert (toy.buffer("stat") == 0).all()

    def test_state_dict_is_a_copy(self, rng):
        toy = Toy(rng)
        state = toy.state_dict()
        state["w"][:] = 42
        assert (toy.w.data == 1).all()

    def test_missing_key_rejected(self, rng):
        toy = Toy(rng)
        state = toy.state_dict()
        del state["w"]
        with pytest.raises(ConfigurationError, match="missing"):
            toy.load_state_dict(state)

    def test_unexpected_key_rejected(self, rng):
        toy = Toy(rng)
        state = toy.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(ConfigurationError, match="unexpected"):
            toy.load_state_dict(state)

    def test_shape_mismatch_rejected(self, rng):
        toy = Toy(rng)
        state = toy.state_dict()
        state["w"] = np.zeros(5)
        with pytest.raises(ConfigurationError, match="shape"):
            toy.load_state_dict(state)

    def test_shape_mismatch_leaves_weights_untouched(self, rng):
        # Validation must complete before any parameter is copied: a
        # rejected state dict may not leave the model half-overwritten
        # (nor bump its weights_version).
        toy = Toy(rng)
        before = {name: param.data.copy()
                  for name, param in toy.named_parameters()}
        version = toy.weights_version
        state = toy.state_dict()
        for key in state:
            if not key.startswith("buffer:"):
                state[key] = state[key] + 42.0
        state["child.bias"] = np.zeros(5)
        with pytest.raises(ConfigurationError, match="shape"):
            toy.load_state_dict(state)
        for name, param in toy.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])
        assert toy.weights_version == version

    def test_zero_grad(self, rng):
        toy = Toy(rng)
        out = toy.child(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert toy.child.kernel.grad is not None
        toy.zero_grad()
        assert toy.child.kernel.grad is None


class TestForward:
    def test_base_forward_raises(self):
        with pytest.raises(NotImplementedError):
            Module().forward()

    def test_call_delegates_to_forward(self, rng):
        toy = Toy(rng)
        assert toy("echo") == "echo"

    def test_repr_lists_children(self, rng):
        assert "child" in repr(Toy(rng))
