"""Tests for the LSTM and GRU cells and their stacked/bidirectional use."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.errors import ConfigurationError
from repro.nn import (
    BidirectionalRNN,
    GRUCell,
    LSTMCell,
    StackedRNN,
    make_cell,
)
from repro.nn.layers.rnn import CELL_TYPES, RNNCell


class TestMakeCell:
    def test_families(self, rng):
        assert isinstance(make_cell("rnn", 2, 3, rng), RNNCell)
        assert isinstance(make_cell("lstm", 2, 3, rng), LSTMCell)
        assert isinstance(make_cell("gru", 2, 3, rng), GRUCell)

    def test_unknown_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            make_cell("transformer", 2, 3, rng)

    def test_cell_types_constant(self):
        assert CELL_TYPES == ("rnn", "lstm", "gru")


class TestLSTMCell:
    def test_state_packing(self, rng):
        cell = LSTMCell(3, 4, rng)
        state = cell.initial_state(2)
        assert state.shape == (2, 8)  # [h, c]
        assert cell.output(state).shape == (2, 4)

    def test_step_shapes(self, rng):
        cell = LSTMCell(3, 4, rng)
        state = cell.step(Tensor(np.ones((2, 3))), cell.initial_state(2))
        assert state.shape == (2, 8)

    def test_hidden_state_bounded(self, rng):
        """h = o * tanh(c) is bounded by 1 in magnitude."""
        cell = LSTMCell(2, 3, rng)
        state = cell.initial_state(1)
        for _ in range(20):
            state = cell.step(Tensor(np.ones((1, 2)) * 10), state)
        assert (np.abs(cell.output(state).data) <= 1.0).all()

    def test_forget_bias_initialised(self, rng):
        cell = LSTMCell(2, 3, rng, forget_bias=1.0)
        assert (cell.b_h.data[3:6] == 1.0).all()
        assert (cell.b_h.data[:3] == 0.0).all()

    def test_invalid_dims(self, rng):
        with pytest.raises(ConfigurationError):
            LSTMCell(0, 3, rng)

    def test_gradcheck(self, rng):
        cell = LSTMCell(2, 3, rng)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 2)),
                   requires_grad=True)
        check_gradients(
            lambda: (cell.step(x, cell.initial_state(2)) ** 2).sum(),
            [x] + cell.parameters())


class TestGRUCell:
    def test_state_is_output(self, rng):
        cell = GRUCell(3, 4, rng)
        state = cell.initial_state(2)
        assert state.shape == (2, 4)
        assert cell.output(state) is state

    def test_interpolation_property(self, rng):
        """With the update gate saturated open, h barely changes."""
        cell = GRUCell(2, 3, rng)
        cell.b_h.data[:3] = 50.0  # z ~= 1 -> keep previous state
        h0 = Tensor(np.full((1, 3), 0.5))
        h1 = cell.step(Tensor(np.zeros((1, 2))), h0)
        np.testing.assert_allclose(h1.data, h0.data, atol=1e-10)

    def test_invalid_dims(self, rng):
        with pytest.raises(ConfigurationError):
            GRUCell(2, 0, rng)

    def test_gradcheck(self, rng):
        cell = GRUCell(2, 3, rng)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 2)),
                   requires_grad=True)
        check_gradients(
            lambda: (cell.step(x, cell.initial_state(2)) ** 2).sum(),
            [x] + cell.parameters())


class TestStackedGatedRNNs:
    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_stacked_output_shape(self, rng, cell_type):
        rnn = StackedRNN(3, 5, rng, num_layers=2, cell_type=cell_type)
        out = rnn(Tensor(np.ones((2, 6, 3))))
        assert out.shape == (2, 5)

    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_mask_carries_state(self, rng, cell_type):
        rnn = StackedRNN(2, 3, rng, cell_type=cell_type)
        data = np.random.default_rng(0).normal(size=(1, 5, 2))
        mask = np.array([[True, True, True, False, False]])
        np.testing.assert_allclose(
            rnn(Tensor(data), mask=mask).data,
            rnn(Tensor(data[:, :3, :])).data)

    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_bidirectional_width(self, rng, cell_type):
        birnn = BidirectionalRNN(3, 4, rng, cell_type=cell_type)
        assert birnn(Tensor(np.ones((2, 5, 3)))).shape == (2, 8)

    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_gradcheck_through_stack(self, rng, cell_type):
        rnn = StackedRNN(2, 3, rng, num_layers=2, cell_type=cell_type)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 2)),
                   requires_grad=True)
        check_gradients(lambda: (rnn(x) ** 2).sum(), [x] + rnn.parameters())

    def test_parameter_count_ordering(self, rng):
        """LSTM > GRU > RNN in parameters -- the complexity claim."""
        def count(cell_type):
            return StackedRNN(4, 8, np.random.default_rng(0),
                              cell_type=cell_type).n_parameters()
        assert count("lstm") > count("gru") > count("rnn")


class TestModelsWithGatedCells:
    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_etsb_with_gated_cell(self, rng, cell_type):
        from repro.models import ETSBRNN, ModelConfig
        config = ModelConfig(char_embed_dim=4, value_units=5,
                             attr_embed_dim=3, attr_units=3,
                             length_dense_units=4, head_units=6,
                             cell_type=cell_type)
        model = ETSBRNN(9, 5, config, rng)
        features = {
            "values": np.array([[1, 2, 0], [3, 4, 5]]),
            "attributes": np.array([1, 2]),
            "length_norm": np.array([[0.5], [1.0]]),
        }
        out = model(features)
        assert out.shape == (2, 2)
        np.testing.assert_allclose(out.numpy().sum(axis=1), 1.0)

    def test_invalid_cell_type_rejected(self):
        from repro.models import ModelConfig
        with pytest.raises(ConfigurationError):
            ModelConfig(cell_type="bert")
