"""Gradient checks for paths the main suites leave uncovered.

Three gaps: dropout (train-mode masks are stochastic, so no suite
gradchecked them), gated cells through a *nonzero* recurrent state (the
cell suites start from ``initial_state``, where ``h_prev @ w_h`` is zero
and ``w_h`` gets a vanishing-by-construction gradient), and schedule /
RMSprop interaction (the rate changes between steps while the moving
average persists).
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import (
    BidirectionalRNN,
    Dropout,
    GRUCell,
    LSTMCell,
    RMSprop,
    StackedRNN,
    use_backend,
)
from repro.nn.schedules import (
    CosineAnnealing,
    ExponentialDecay,
    LearningRateScheduler,
    StepDecay,
)


def leaf(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestDropoutGradients:
    def test_train_mode_gradcheck_with_fixed_mask(self, rng):
        """Re-seeding inside ``fn`` pins the mask, making dropout
        deterministic across the finite-difference evaluations."""
        layer = Dropout(0.4, np.random.default_rng(7))
        x = leaf(rng, 4, 3)

        def fn():
            layer._rng = np.random.default_rng(7)
            return (layer(x) ** 2).sum()

        check_gradients(fn, [x])

    def test_eval_mode_gradient_is_identity(self, rng):
        layer = Dropout(0.9, rng).eval()
        x = leaf(rng, 3, 2)
        layer(x).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((3, 2)))

    def test_train_mode_grad_zero_exactly_on_dropped(self, rng):
        """The backward mask equals the forward mask: dropped activations
        get exactly zero gradient, kept ones get the inverted scale."""
        layer = Dropout(0.5, np.random.default_rng(3))
        x = leaf(rng, 6, 5)
        layer._rng = np.random.default_rng(3)
        out = layer(x)
        out.sum().backward()
        dropped = out.data == 0.0
        assert dropped.any() and not dropped.all()
        assert (x.grad[dropped] == 0.0).all()
        np.testing.assert_allclose(x.grad[~dropped], 2.0)

    def test_zero_rate_gradcheck_without_reseeding(self, rng):
        layer = Dropout(0.0, rng)
        x = leaf(rng, 3, 3)
        check_gradients(lambda: (layer(x) ** 2).sum(), [x])


class TestGatedRecurrentStateGradients:
    """Chain two steps so the second sees a nonzero ``h_prev`` (and, for
    LSTM, ``c_prev``) -- the only way ``w_h`` receives real gradient."""

    @pytest.mark.parametrize("cell_cls", [LSTMCell, GRUCell])
    def test_chained_steps_gradcheck(self, rng, cell_cls):
        cell = cell_cls(2, 3, rng)
        x0, x1 = leaf(rng, 2, 2), leaf(rng, 2, 2)

        def fn():
            state = cell.step(x0, cell.initial_state(2))
            return (cell.step(x1, state) ** 2).sum()

        check_gradients(fn, [x0, x1] + cell.parameters())
        assert np.abs(cell.w_h.grad).max() > 0.0

    @pytest.mark.parametrize("cell_cls", [LSTMCell, GRUCell])
    def test_gradient_flows_into_initial_state(self, rng, cell_cls):
        cell = cell_cls(2, 3, rng)
        state0 = leaf(rng, 2, 3 * cell.state_multiplier)
        x = leaf(rng, 2, 2)
        check_gradients(lambda: (cell.step(x, state0) ** 2).sum(),
                        [x, state0])

    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_bidirectional_masked_gradcheck(self, rng, cell_type):
        birnn = BidirectionalRNN(2, 3, rng, cell_type=cell_type)
        x = leaf(np.random.default_rng(0), 2, 4, 2)
        mask = np.array([[True, True, True, False],
                         [True, True, False, False]])
        check_gradients(lambda: (birnn(x, mask=mask) ** 2).sum(),
                        [x] + birnn.parameters())

    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_graph_backend_masked_gradcheck(self, rng, cell_type):
        """The per-step graph route, with padding -- the fused kernel
        suite covers the other backend."""
        rnn = StackedRNN(2, 3, rng, num_layers=2, cell_type=cell_type)
        x = leaf(np.random.default_rng(1), 2, 4, 2)
        mask = np.array([[True, True, False, False],
                         [True, True, True, True]])
        with use_backend("graph"):
            check_gradients(lambda: (rnn(x, mask=mask) ** 2).sum(),
                            [x] + rnn.parameters())


class TestSchedulesWithRMSprop:
    """The schedule mutates ``learning_rate`` between epochs while the
    RMSprop moving average persists across the change."""

    def _run(self, schedule, epochs, steps_per_epoch=2, seed=0):
        rng = np.random.default_rng(seed)
        param = Tensor(rng.normal(size=(3,)), requires_grad=True)
        target = rng.normal(size=(3,))
        optimizer = RMSprop([param], learning_rate=schedule.base_rate)
        scheduler = LearningRateScheduler(optimizer, schedule)
        scheduler.on_train_begin(model=None)
        rates = []
        for epoch in range(epochs):
            for _ in range(steps_per_epoch):
                param.zero_grad()
                ((param - Tensor(target)) ** 2).sum().backward()
                optimizer.step()
            scheduler.on_epoch_end(model=None, epoch=epoch, logs={})
            rates.append(optimizer.learning_rate)
        return param, optimizer, rates

    @pytest.mark.parametrize("schedule", [
        StepDecay(0.05, factor=0.5, step_epochs=2),
        ExponentialDecay(0.05, decay=0.3),
        CosineAnnealing(0.05, total_epochs=4),
    ], ids=["step", "exponential", "cosine"])
    def test_rate_tracks_schedule_and_state_persists(self, schedule):
        param, optimizer, rates = self._run(schedule, epochs=4)
        # on_epoch_end(epoch) pre-sets the rate for epoch + 1
        assert rates == [schedule.rate_at(e + 1) for e in range(4)]
        # the moving average survived every rate change intact
        (mean_square,) = optimizer._mean_square
        assert (mean_square > 0.0).all()

    def test_decayed_run_steps_smaller_than_constant(self):
        """Same gradients, same moving average -- only the rate differs,
        so the decayed trajectory must end closer to its start."""
        decayed, _, _ = self._run(ExponentialDecay(0.05, decay=1.0),
                                  epochs=6)
        constant, _, _ = self._run(ExponentialDecay(0.05, decay=0.0),
                                   epochs=6)
        start = np.random.default_rng(0).normal(size=(3,))
        assert (np.abs(decayed.data - start).sum()
                < np.abs(constant.data - start).sum())

    def test_scheduler_resume_matches_uninterrupted(self):
        """state_dict round trip mid-schedule: the restored pair keeps
        both the epoch position and the RMSprop slots."""
        full_param, full_opt, _ = self._run(StepDecay(0.05, step_epochs=2),
                                            epochs=6)

        rng = np.random.default_rng(0)
        param = Tensor(rng.normal(size=(3,)), requires_grad=True)
        target = rng.normal(size=(3,))
        optimizer = RMSprop([param], learning_rate=0.05)
        scheduler = LearningRateScheduler(optimizer, StepDecay(0.05, step_epochs=2))
        scheduler.on_train_begin(model=None)
        for epoch in range(3):
            for _ in range(2):
                param.zero_grad()
                ((param - Tensor(target)) ** 2).sum().backward()
                optimizer.step()
            scheduler.on_epoch_end(model=None, epoch=epoch, logs={})

        resumed_param = Tensor(param.data.copy(), requires_grad=True)
        resumed_opt = RMSprop([resumed_param], learning_rate=0.05)
        resumed_opt.load_state_dict(optimizer.state_dict())
        resumed_sched = LearningRateScheduler(resumed_opt,
                                              StepDecay(0.05, step_epochs=2))
        resumed_sched.load_state_dict(scheduler.state_dict())
        for epoch in range(3, 6):
            for _ in range(2):
                resumed_param.zero_grad()
                ((resumed_param - Tensor(target)) ** 2).sum().backward()
                resumed_opt.step()
            resumed_sched.on_epoch_end(model=None, epoch=epoch, logs={})

        assert resumed_param.data.tobytes() == full_param.data.tobytes()
        assert resumed_opt.learning_rate == full_opt.learning_rate
