"""Backend selection and fused-vs-graph equivalence.

The fused kernels must be bit-for-bit equivalent to the per-step graph
reference in forward values and agree (to float accumulation order) in
gradients, across cell types x masked/unmasked x forward/backward
direction -- otherwise the table/figure reproductions would depend on the
active backend.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ConfigurationError
from repro.models.config import ModelConfig
from repro.models.etsb_rnn import ETSBRNN
from repro.models.tsb_rnn import TSBRNN
from repro.nn import BidirectionalRNN, StackedRNN, use_backend
from repro.nn.backend import (
    BACKENDS,
    BACKEND_ENV_VAR,
    get_backend,
    reset_backend,
    set_backend,
)
from repro.nn.layers.rnn import CELL_TYPES

#: Mixed mask: one row fully live, one truncated, plus a fully dead step.
MASK = np.array([[True, True, True, True, False, False],
                 [True, True, False, False, False, False],
                 [True, True, True, True, True, True]])


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    reset_backend()


class TestBackendSelection:
    def test_default_is_fused(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        reset_backend()
        assert get_backend() == "fused"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "graph")
        reset_backend()
        assert get_backend() == "graph"

    def test_set_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "graph")
        reset_backend()
        set_backend("fused")
        assert get_backend() == "fused"

    def test_use_backend_restores(self):
        set_backend("fused")
        with use_backend("graph"):
            assert get_backend() == "graph"
        assert get_backend() == "fused"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            set_backend("tpu")

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "nope")
        reset_backend()
        with pytest.raises(ConfigurationError):
            get_backend()

    def test_known_backends(self):
        assert BACKENDS == ("fused", "graph")


def _stacked_loss_and_grads(backend, cell_type, mask, reverse, x_data):
    """One training-style pass; returns (final, step values, loss, grads)."""
    rnn = StackedRNN(4, 5, np.random.default_rng(7), num_layers=2,
                     reverse=reverse, cell_type=cell_type)
    x = Tensor(x_data.copy(), requires_grad=True)
    with use_backend(backend):
        final, steps = rnn.run(x, mask=mask)
        loss = (final ** 2).sum()
        for step in steps:  # exercise per-step output gradients too
            loss = loss + (step * 0.01).sum()
        loss.backward()
    grads = [x.grad.copy()] + [p.grad.copy() for p in rnn.parameters()]
    return (final.data.copy(), [s.data.copy() for s in steps],
            loss.item(), grads)


@pytest.mark.equivalence
class TestFusedGraphEquivalence:
    x_data = np.random.default_rng(3).normal(size=(3, 6, 4))

    @pytest.mark.parametrize("cell_type", CELL_TYPES)
    @pytest.mark.parametrize("mask", [None, MASK], ids=["unmasked", "masked"])
    @pytest.mark.parametrize("reverse", [False, True], ids=["fwd", "bwd"])
    def test_stacked_rnn(self, cell_type, mask, reverse):
        graph = _stacked_loss_and_grads("graph", cell_type, mask, reverse,
                                        self.x_data)
        fused = _stacked_loss_and_grads("fused", cell_type, mask, reverse,
                                        self.x_data)
        np.testing.assert_array_equal(graph[0], fused[0])  # final: bit-for-bit
        for graph_step, fused_step in zip(graph[1], fused[1]):
            np.testing.assert_array_equal(graph_step, fused_step)
        assert graph[2] == fused[2]  # loss value
        for graph_grad, fused_grad in zip(graph[3], fused[3]):
            np.testing.assert_allclose(graph_grad, fused_grad,
                                       rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("cell_type", CELL_TYPES)
    def test_bidirectional(self, cell_type):
        def run(backend):
            birnn = BidirectionalRNN(4, 5, np.random.default_rng(5),
                                     num_layers=2, cell_type=cell_type)
            x = Tensor(self.x_data.copy(), requires_grad=True)
            with use_backend(backend):
                out = birnn(x, mask=MASK)
                (out ** 2).sum().backward()
            return (out.data.copy(),
                    [x.grad.copy()] + [p.grad.copy() for p in birnn.parameters()])

        graph_out, graph_grads = run("graph")
        fused_out, fused_grads = run("fused")
        np.testing.assert_array_equal(graph_out, fused_out)
        for graph_grad, fused_grad in zip(graph_grads, fused_grads):
            np.testing.assert_allclose(graph_grad, fused_grad,
                                       rtol=1e-9, atol=1e-12)


class TestLazyOutputs:
    def test_collect_outputs_false_skips_list(self):
        rnn = StackedRNN(3, 4, np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5, 3)))
        final_lazy, outputs = rnn.run(x, collect_outputs=False)
        assert outputs == []
        final_full, steps = rnn.run(x)
        assert len(steps) == 5
        np.testing.assert_array_equal(final_lazy.data, final_full.data)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_forward_matches_run(self, backend):
        rnn = StackedRNN(3, 4, np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5, 3)))
        with use_backend(backend):
            np.testing.assert_array_equal(rnn(x).data, rnn.run(x)[0].data)


def _tsb_setup():
    rng = np.random.default_rng(0)
    config = ModelConfig(char_embed_dim=4, value_units=3, num_layers=2,
                         attr_embed_dim=2, attr_units=2,
                         length_dense_units=3, head_units=4)
    values = rng.integers(0, 10, size=(6, 7))
    values[0, :] = 0  # a fully padded (empty) value
    features = {
        "values": values,
        "attributes": rng.integers(0, 3, size=6),
        "length_norm": rng.random((6, 1)),
    }
    labels = rng.integers(0, 2, size=6)
    return config, features, labels


@pytest.mark.parametrize("architecture", [TSBRNN, ETSBRNN])
@pytest.mark.equivalence
class TestModelEquivalence:
    def _build(self, architecture, config):
        if architecture is TSBRNN:
            return TSBRNN(10, config, np.random.default_rng(4))
        return ETSBRNN(10, 4, config, np.random.default_rng(4))

    def test_forward_identical(self, architecture):
        config, features, _ = _tsb_setup()
        model = self._build(architecture, config)
        with use_backend("graph"):
            graph_probs = model(features).data.copy()
        with use_backend("fused"):
            fused_probs = model(features).data.copy()
        np.testing.assert_array_equal(graph_probs, fused_probs)

    def test_training_loss_identical(self, architecture):
        config, features, labels = _tsb_setup()
        model = self._build(architecture, config)
        with use_backend("graph"):
            graph_loss = model.training_loss(features, labels)
            graph_loss.backward()
            graph_grads = {name: p.grad.copy()
                           for name, p in model.named_parameters()}
        model.zero_grad()
        with use_backend("fused"):
            fused_loss = model.training_loss(features, labels)
            fused_loss.backward()
        assert graph_loss.item() == fused_loss.item()
        for name, param in model.named_parameters():
            np.testing.assert_allclose(
                graph_grads[name], param.grad, rtol=1e-9, atol=1e-12,
                err_msg=f"gradient mismatch for {name}")
