"""Tests for the training callbacks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    BestWeightsCheckpoint,
    Dense,
    EarlyStopping,
    EpochEvaluator,
    History,
)


@pytest.fixture
def model(rng):
    return Dense(2, 2, rng)


class TestHistory:
    def test_records_all_epochs(self, model):
        history = History()
        for epoch in range(3):
            history.on_epoch_end(model, epoch, {"loss": float(epoch)})
        assert history.epochs == [0, 1, 2]
        assert history.series("loss") == [0.0, 1.0, 2.0]

    def test_multiple_metrics(self, model):
        history = History()
        history.on_epoch_end(model, 0, {"loss": 1.0, "acc": 0.5})
        assert history.series("acc") == [0.5]

    def test_unknown_series_raises(self, model):
        with pytest.raises(ConfigurationError):
            History().series("nope")


class TestBestWeightsCheckpoint:
    def test_snapshots_on_improvement(self, model):
        cb = BestWeightsCheckpoint()
        cb.on_epoch_end(model, 0, {"loss": 1.0})
        model.kernel.data[:] = 99.0
        cb.on_epoch_end(model, 1, {"loss": 2.0})  # worse, no snapshot
        cb.on_train_end(model)
        assert not (model.kernel.data == 99.0).any()
        assert cb.best_epoch == 0
        assert cb.best_value == 1.0

    def test_restores_latest_best(self, model):
        cb = BestWeightsCheckpoint()
        cb.on_epoch_end(model, 0, {"loss": 2.0})
        model.kernel.data[:] = 7.0
        cb.on_epoch_end(model, 1, {"loss": 1.0})  # improvement at epoch 1
        model.kernel.data[:] = 99.0
        cb.on_train_end(model)
        assert (model.kernel.data == 7.0).all()
        assert cb.best_epoch == 1

    def test_max_mode(self, model):
        cb = BestWeightsCheckpoint(monitor="acc", mode="max")
        cb.on_epoch_end(model, 0, {"acc": 0.5})
        cb.on_epoch_end(model, 1, {"acc": 0.9})
        assert cb.best_epoch == 1

    def test_missing_metric_raises(self, model):
        with pytest.raises(ConfigurationError):
            BestWeightsCheckpoint().on_epoch_end(model, 0, {"acc": 1.0})

    def test_restore_without_snapshot_raises(self, model):
        with pytest.raises(ConfigurationError):
            BestWeightsCheckpoint().restore(model)

    def test_no_restore_when_disabled(self, model):
        cb = BestWeightsCheckpoint(restore_on_end=False)
        cb.on_epoch_end(model, 0, {"loss": 1.0})
        model.kernel.data[:] = 42.0
        cb.on_train_end(model)
        assert (model.kernel.data == 42.0).all()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            BestWeightsCheckpoint(mode="median")


class TestEarlyStopping:
    def test_stops_after_patience(self, model):
        cb = EarlyStopping(patience=2)
        cb.on_epoch_end(model, 0, {"loss": 1.0})
        cb.on_epoch_end(model, 1, {"loss": 1.0})
        assert not cb.stop_requested()
        cb.on_epoch_end(model, 2, {"loss": 1.0})
        assert cb.stop_requested()

    def test_improvement_resets_counter(self, model):
        cb = EarlyStopping(patience=2)
        cb.on_epoch_end(model, 0, {"loss": 1.0})
        cb.on_epoch_end(model, 1, {"loss": 1.0})
        cb.on_epoch_end(model, 2, {"loss": 0.5})
        cb.on_epoch_end(model, 3, {"loss": 0.5})
        assert not cb.stop_requested()

    def test_min_delta(self, model):
        cb = EarlyStopping(patience=1, min_delta=0.1)
        cb.on_epoch_end(model, 0, {"loss": 1.0})
        cb.on_epoch_end(model, 1, {"loss": 0.95})  # not enough improvement
        assert cb.stop_requested()

    def test_missing_metric_ignored(self, model):
        cb = EarlyStopping(patience=1)
        cb.on_epoch_end(model, 0, {"other": 1.0})
        assert not cb.stop_requested()

    def test_invalid_patience(self):
        with pytest.raises(ConfigurationError):
            EarlyStopping(patience=0)


class TestEpochEvaluator:
    def test_injects_metrics(self, model):
        cb = EpochEvaluator(lambda: {"test_acc": 0.75})
        logs = {"loss": 1.0}
        cb.on_epoch_end(model, 0, logs)
        assert logs["test_acc"] == 0.75

    def test_switches_to_eval_and_back(self, model):
        modes = []
        cb = EpochEvaluator(lambda: (modes.append(model.training), {})[1])
        cb.on_epoch_end(model, 0, {})
        assert modes == [False]
        assert model.training

    def test_restores_mode_on_exception(self, model):
        def boom():
            raise RuntimeError("x")
        cb = EpochEvaluator(boom)
        with pytest.raises(RuntimeError):
            cb.on_epoch_end(model, 0, {})
        assert model.training
