"""The kernel work plane: plans, byte-identity, and scratch isolation.

The plane's contract is that it is invisible in the numbers: the group
plan is a pure function of the batch mask, forward states and gradients
are byte-identical at every worker count, and the plane-off serial path
produces the same values.  Scratch buffers are thread-local so the pool
workers (and any embedding application threads) cannot corrupt each
other's staging arrays.
"""

import threading

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ConfigurationError
from repro.nn.kernels import gru_level, lstm_level, rnn_level
from repro.nn.parallel import (
    MAX_GROUPS,
    MIN_GROUP_ROWS,
    WORKERS_ENV_VAR,
    get_workers,
    plan_groups,
    reset_workers,
    set_workers,
    use_workers,
)

LEVELS = {"rnn": (rnn_level, 1), "lstm": (lstm_level, 4),
          "gru": (gru_level, 3)}


def _skewed_mask(batch=12, n_steps=10, n_short=8, short_len=2):
    lengths = np.full(batch, n_steps)
    lengths[:n_short] = short_len
    return np.arange(n_steps)[None, :] < lengths[:, None]


def _level_inputs(mult, batch=12, n_steps=10, d_in=3, units=5, seed=0):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(batch, n_steps, d_in)), requires_grad=True)
    w_x = Tensor(0.5 * rng.normal(size=(d_in, units * mult)),
                 requires_grad=True)
    w_h = Tensor(0.5 * rng.normal(size=(units, units * mult)),
                 requires_grad=True)
    b_h = Tensor(0.1 * rng.normal(size=(units * mult,)), requires_grad=True)
    return x, w_x, w_h, b_h


def _run(level, mult, workers, mask, reverse=False, seed=0):
    """One forward+backward at a given worker count; returns raw bytes."""
    x, w_x, w_h, b_h = _level_inputs(mult, batch=mask.shape[0],
                                     n_steps=mask.shape[1], seed=seed)
    with use_workers(workers):
        out = level(x, w_x, w_h, b_h, mask=mask, reverse=reverse)
        (out * out).sum().backward()
    grads = tuple(t.grad.copy() for t in (x, w_x, w_h, b_h))
    return out.data.copy(), grads


class TestWorkerConfig:
    def test_use_workers_restores_previous_value(self):
        set_workers(3)
        try:
            with use_workers(1):
                assert get_workers() == 1
            assert get_workers() == 3
        finally:
            reset_workers()

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            set_workers(-1)

    def test_env_var_read_and_validated(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        reset_workers()
        assert get_workers() == 2
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        reset_workers()
        with pytest.raises(ConfigurationError):
            get_workers()
        monkeypatch.delenv(WORKERS_ENV_VAR)
        reset_workers()
        assert get_workers() == 0


class TestPlanGroups:
    def test_plan_covers_each_row_exactly_once(self):
        groups = plan_groups(_skewed_mask())
        rows = np.concatenate(groups)
        assert sorted(rows.tolist()) == list(range(12))

    def test_plan_respects_group_floor_and_cap(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            lengths = rng.integers(1, 25, size=rng.integers(8, 64))
            mask = np.arange(24)[None, :] < lengths[:, None]
            groups = plan_groups(mask)
            assert 1 <= len(groups) <= MAX_GROUPS
            assert all(len(g) >= MIN_GROUP_ROWS for g in groups)

    def test_plan_ignores_worker_count(self):
        mask = _skewed_mask()
        plans = []
        for workers in (1, 2, 4):
            with use_workers(workers):
                plans.append(plan_groups(mask))
        reference = plans[0]
        for plan in plans[1:]:
            assert len(plan) == len(reference)
            for got, want in zip(plan, reference):
                np.testing.assert_array_equal(got, want)

    def test_skewed_batch_splits(self):
        assert len(plan_groups(_skewed_mask())) >= 2

    def test_uniform_batch_stays_whole(self):
        mask = np.ones((16, 10), dtype=bool)
        assert len(plan_groups(mask)) == 1

    def test_groups_are_length_sorted(self):
        mask = _skewed_mask()
        lengths = mask.sum(axis=1)
        groups = plan_groups(mask)
        maxes = [lengths[g].max() for g in groups]
        assert maxes == sorted(maxes)


@pytest.mark.equivalence
class TestByteIdentity:
    @pytest.mark.parametrize("cell", sorted(LEVELS))
    @pytest.mark.parametrize("reverse", [False, True], ids=["fwd", "bwd"])
    def test_identical_bytes_across_worker_counts(self, cell, reverse):
        level, mult = LEVELS[cell]
        mask = _skewed_mask()
        out1, grads1 = _run(level, mult, 1, mask, reverse)
        for workers in (2, 4):
            out, grads = _run(level, mult, workers, mask, reverse)
            assert out.tobytes() == out1.tobytes()
            for got, want in zip(grads, grads1):
                assert got.tobytes() == want.tobytes()

    @pytest.mark.parametrize("cell", sorted(LEVELS))
    @pytest.mark.parametrize("reverse", [False, True], ids=["fwd", "bwd"])
    def test_plane_matches_serial_path(self, cell, reverse):
        level, mult = LEVELS[cell]
        mask = _skewed_mask()
        out_off, grads_off = _run(level, mult, 0, mask, reverse)
        out_on, grads_on = _run(level, mult, 2, mask, reverse)
        # Serial padding steps may round-trip -0.0 where the plane zero
        # fills; array_equal treats the two as equal values.
        np.testing.assert_array_equal(out_on, out_off)
        for got, want in zip(grads_on, grads_off):
            np.testing.assert_array_equal(got, want)

    def test_unsplit_plan_falls_back_to_serial_kernel(self):
        level, mult = LEVELS["lstm"]
        mask = np.ones((16, 6), dtype=bool)  # uniform: one-group plan
        out_off, grads_off = _run(level, mult, 0, mask)
        out_on, grads_on = _run(level, mult, 2, mask)
        assert out_on.tobytes() == out_off.tobytes()
        for got, want in zip(grads_on, grads_off):
            assert got.tobytes() == want.tobytes()

    def test_small_batches_bypass_the_plane(self):
        level, mult = LEVELS["gru"]
        mask = _skewed_mask(batch=6, n_short=4)  # below MIN_PARALLEL_ROWS
        out_off, grads_off = _run(level, mult, 0, mask)
        out_on, grads_on = _run(level, mult, 2, mask)
        assert out_on.tobytes() == out_off.tobytes()
        for got, want in zip(grads_on, grads_off):
            assert got.tobytes() == want.tobytes()


class TestScratchIsolation:
    def test_concurrent_threads_do_not_corrupt_scratch(self):
        """Two application threads hammer different shapes concurrently;
        thread-local scratch keeps every result equal to a quiet run."""
        level, mult = LEVELS["lstm"]
        shapes = [(9, 7), (13, 5)]
        masks = [np.ones(shape, dtype=bool) for shape in shapes]

        def forward(mask, seed):
            x, w_x, w_h, b_h = _level_inputs(
                mult, batch=mask.shape[0], n_steps=mask.shape[1], seed=seed)
            return level(x, w_x, w_h, b_h, mask=mask).data.copy()

        references = [forward(mask, seed)
                      for seed, mask in enumerate(masks)]
        results = [[] for _ in masks]
        barrier = threading.Barrier(len(masks))

        def worker(index):
            barrier.wait()
            for _ in range(25):
                results[index].append(forward(masks[index], index))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(masks))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for reference, outs in zip(references, results):
            for out in outs:
                np.testing.assert_array_equal(out, reference)
