"""Tests for learning-rate schedules."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import Dense, SGD
from repro.nn.schedules import (
    ConstantSchedule,
    CosineAnnealing,
    ExponentialDecay,
    LearningRateScheduler,
    StepDecay,
)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.1)
        assert schedule.rate_at(0) == schedule.rate_at(100) == 0.1

    def test_step_decay(self):
        schedule = StepDecay(1.0, factor=0.5, step_epochs=10)
        assert schedule.rate_at(0) == 1.0
        assert schedule.rate_at(9) == 1.0
        assert schedule.rate_at(10) == 0.5
        assert schedule.rate_at(25) == 0.25

    def test_exponential_decay(self):
        schedule = ExponentialDecay(1.0, decay=0.1)
        assert schedule.rate_at(0) == 1.0
        assert schedule.rate_at(10) == pytest.approx(math.exp(-1.0))

    def test_exponential_zero_decay_is_constant(self):
        schedule = ExponentialDecay(0.5, decay=0.0)
        assert schedule.rate_at(50) == 0.5

    def test_cosine_endpoints(self):
        schedule = CosineAnnealing(1.0, total_epochs=100, min_rate=0.1)
        assert schedule.rate_at(0) == pytest.approx(1.0)
        assert schedule.rate_at(100) == pytest.approx(0.1)
        assert schedule.rate_at(50) == pytest.approx(0.55)

    def test_cosine_monotone_decreasing(self):
        schedule = CosineAnnealing(1.0, total_epochs=20)
        rates = [schedule.rate_at(e) for e in range(21)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_cosine_clamps_past_horizon(self):
        schedule = CosineAnnealing(1.0, total_epochs=10, min_rate=0.2)
        assert schedule.rate_at(50) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(0.0)
        with pytest.raises(ConfigurationError):
            StepDecay(1.0, factor=0.0)
        with pytest.raises(ConfigurationError):
            StepDecay(1.0, step_epochs=0)
        with pytest.raises(ConfigurationError):
            ExponentialDecay(1.0, decay=-1.0)
        with pytest.raises(ConfigurationError):
            CosineAnnealing(1.0, total_epochs=0)
        with pytest.raises(ConfigurationError):
            CosineAnnealing(1.0, total_epochs=10, min_rate=2.0)


class TestSchedulerCallback:
    def test_applies_rate_per_epoch(self, rng):
        model = Dense(2, 2, rng)
        optimizer = SGD(model.parameters(), learning_rate=1.0)
        scheduler = LearningRateScheduler(optimizer,
                                          StepDecay(1.0, 0.5, step_epochs=1))
        scheduler.on_train_begin(model)
        assert optimizer.learning_rate == 1.0
        logs = {}
        scheduler.on_epoch_end(model, 0, logs)
        assert logs["learning_rate"] == 1.0  # rate used during epoch 0
        assert optimizer.learning_rate == 0.5  # rate for epoch 1

    def test_integrates_with_trainer(self, rng):
        import numpy as np
        from repro.nn import Trainer, softmax_cross_entropy_with_logits
        from repro.nn.module import Module
        from repro.autograd import Tensor

        class Wrapper(Module):
            def __init__(self):
                super().__init__()
                self.dense = Dense(2, 2, rng, activation="softmax")

            def forward(self, features):
                return self.dense(Tensor(features["x"]))

        model = Wrapper()
        optimizer = SGD(model.parameters(), learning_rate=0.5)
        scheduler = LearningRateScheduler(
            optimizer, ExponentialDecay(0.5, decay=0.5))
        trainer = Trainer(
            model=model, optimizer=optimizer,
            loss_fn=lambda p, y: softmax_cross_entropy_with_logits(
                (p + 1e-9).log(), y),
            callbacks=(scheduler,))
        x = rng.normal(size=(20, 2))
        y = (x[:, 0] > 0).astype(np.int64)
        history = trainer.fit({"x": x}, y, epochs=4, batch_size=10)
        rates = history.series("learning_rate")
        assert len(rates) == 4
        assert all(a > b for a, b in zip(rates, rates[1:]))
