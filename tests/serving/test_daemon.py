"""End-to-end daemon tests over a real local socket."""

import json

import numpy as np
import pytest

from repro.inference import InferenceEngine
from repro.models.serialization import save_detector
from repro.serving import ServingClient, ServingDaemon
from repro.serving import protocol
from repro.table import write_csv

from tests.serving.conftest import build_detector, encode_cells, paper_tables


@pytest.fixture
def daemon(detector):
    with ServingDaemon(detector=detector, batch_delay_ms=2.0) as daemon:
        yield daemon


@pytest.fixture
def client(daemon):
    with ServingClient(daemon.host, daemon.port) as client:
        yield client


def load_paper_table(client, session="t"):
    dirty, _ = paper_tables()
    columns = {name: list(dirty.column(name).values)
               for name in dirty.column_names}
    return client.request({"op": "load_table", "session": session,
                           "columns": columns})


class TestRequestReply:
    def test_ping(self, client):
        reply = client.request({"op": "ping"})
        assert reply["ok"] is True
        assert reply["tenants"] == ["default"]

    def test_score_matches_direct_engine(self, prepared, client):
        values = ["80,000", "abc", "8000"]
        attribute = prepared.attributes[0]
        reply = client.request({"op": "score", "cells": [
            {"attribute": attribute, "value": v} for v in values]})
        assert reply["ok"] is True
        assert len(reply["flags"]) == len(values)
        assert reply["weights_version"] == 0
        reference = build_detector(prepared)
        engine = InferenceEngine(reference.model)
        try:
            features, lengths = encode_cells(reference, values, attribute)
            expected = engine.predict_proba(features, lengths=lengths)
        finally:
            engine.close()
        np.testing.assert_array_equal(np.array(reply["probabilities"]),
                                      expected)
        assert reply["flags"] == list(expected.argmax(axis=1))

    def test_score_validates_cells(self, client, prepared):
        for cells in (None, [], [{"value": "x"}],
                      [{"attribute": "ghost", "value": "x"}]):
            reply = client.request({"op": "score", "cells": cells})
            assert reply["ok"] is False
            assert reply["code"] == protocol.BAD_REQUEST

    def test_unknown_op_and_bad_json(self, daemon, client):
        reply = client.request({"op": "warp"})
        assert reply["code"] == protocol.BAD_REQUEST
        assert "unknown op" in reply["error"]
        reply = daemon.handle_line(b"{not json\n")
        assert reply["code"] == protocol.BAD_REQUEST

    def test_unknown_tenant_is_not_found(self, client):
        reply = client.request({"op": "ping"})  # daemon up
        reply = client.request({"op": "score", "tenant": "ghost",
                                "cells": [{"attribute": "A", "value": "1"}]})
        assert reply["ok"] is False
        assert reply["code"] == protocol.NOT_FOUND
        assert "ghost" in reply["error"]

    def test_error_counters(self, daemon, client):
        client.request({"op": "nope"})
        assert daemon.n_errors >= 1


class TestSessions:
    def test_load_table_inline_and_update(self, client):
        reply = load_paper_table(client)
        assert reply["ok"] is True
        assert reply["n_table_rows"] == 5
        assert reply["n_feature_rows"] == 5 * len(reply["columns"])
        assert reply["skipped_columns"] == []
        for item in reply["flagged"]:
            assert set(item) == {"row", "attribute", "value"}

        update = client.request({"op": "update", "session": "t", "row": 0,
                                 "column": reply["columns"][0],
                                 "value": "new"})
        assert update["ok"] is True
        assert update["n_rescored"] == 1
        assert update["full_rescore"] is False

    def test_load_table_from_csv(self, client, tmp_path):
        dirty, _ = paper_tables()
        path = tmp_path / "dirty.csv"
        write_csv(dirty, path)
        reply = client.request({"op": "load_table", "session": "csv",
                                "csv": str(path)})
        assert reply["ok"] is True
        assert reply["n_table_rows"] == 5

    def test_unknown_session_is_not_found(self, client):
        reply = client.request({"op": "update", "session": "ghost",
                                "row": 0, "column": "A", "value": "x"})
        assert reply["ok"] is False
        assert reply["code"] == protocol.NOT_FOUND
        assert "ghost" in reply["error"]

    def test_feedback_roundtrip(self, client):
        reply = load_paper_table(client)
        column = reply["columns"][0]
        reply = client.request({"op": "feedback", "session": "t",
                                "row": 1, "column": column, "label": 1})
        assert reply["ok"] is True
        assert reply["n_feedback"] == 1
        reply = client.request({"op": "feedback", "session": "t",
                                "row": 1, "column": column, "label": 5})
        assert reply["code"] == protocol.BAD_REQUEST


class TestSwapAndStats:
    def test_swap_model_over_the_wire(self, prepared, client, tmp_path):
        path = tmp_path / "v2.npz"
        save_detector(build_detector(prepared, seed=7), path)
        reply = client.request({"op": "swap_model", "model": str(path)})
        assert reply["ok"] is True
        assert reply["mode"] == "in-place"
        assert reply["version"] == 1
        reply = client.request({"op": "swap_model"})
        assert reply["code"] == protocol.BAD_REQUEST

    def test_stats_reflects_traffic(self, client):
        load_paper_table(client)
        reply = client.request({"op": "stats"})
        assert reply["ok"] is True
        assert reply["requests"]["n_requests"] >= 2
        assert reply["batcher"]["n_batches"] >= 1
        assert "default" in reply["tenants"]
        assert reply["sessions"]["t"]["n_feature_rows"] > 0


class TestBackpressure:
    def test_admission_bound_returns_429(self, detector):
        daemon = ServingDaemon(detector=detector, max_queue_rows=1)
        try:
            # The batcher thread is not running, so a queued row stays
            # queued: the next request must be shed at the door.
            features, lengths = encode_cells(detector, ["x"])
            daemon.batcher.submit("default", features, lengths)
            reply = daemon.handle_line(json.dumps(
                {"op": "score",
                 "cells": [{"attribute": detector.prepared.attributes[0],
                            "value": "y"}]}).encode() + b"\n")
            assert reply["ok"] is False
            assert reply["code"] == protocol.OVERLOADED
            assert reply["retry"] is True
            assert daemon.n_rejected == 1
        finally:
            daemon.batcher.start()  # drain the stranded future
            daemon.close()


class TestShutdown:
    def test_shutdown_op_stops_the_daemon(self, detector):
        daemon = ServingDaemon(detector=detector).start()
        with ServingClient(daemon.host, daemon.port) as client:
            reply = client.request({"op": "shutdown"})
            assert reply["ok"] is True
            assert reply["stopping"] is True
            # The internal reply-then-drop marker is framing, not
            # protocol: it must never be serialized onto the wire.
            assert "_close" not in reply
        daemon.shutdown()
        with pytest.raises(OSError):
            ServingClient(daemon.host, daemon.port).connect()
