"""Model registry: registration, in-place vs replace hot swap."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.serialization import save_detector
from repro.serving import ModelRegistry
from repro.serving.registry import DEFAULT_TENANT

from tests.serving.conftest import build_detector, encode_cells


class TestRegistration:
    def test_add_and_get(self, detector):
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            assert registry.get(DEFAULT_TENANT) is entry
            assert DEFAULT_TENANT in registry
            assert registry.tenants() == (DEFAULT_TENANT,)
            assert entry.version == 0
            assert entry.swaps == 0
        finally:
            registry.close()

    def test_duplicate_tenant_rejected(self, detector):
        registry = ModelRegistry()
        try:
            registry.add(detector=detector)
            with pytest.raises(ConfigurationError):
                registry.add(detector=detector)
        finally:
            registry.close()

    def test_unknown_tenant_raises_key_error(self):
        with pytest.raises(KeyError):
            ModelRegistry().get("ghost")

    def test_exactly_one_source_required(self, detector):
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError):
            registry.add()
        with pytest.raises(ConfigurationError):
            registry.add(detector=detector, path="m.npz")

    def test_unfitted_detector_rejected(self):
        from repro.models import ErrorDetector

        with pytest.raises(ConfigurationError):
            ModelRegistry().add(detector=ErrorDetector())

    def test_add_from_archive(self, detector, tmp_path):
        path = tmp_path / "m.npz"
        save_detector(detector, path)
        registry = ModelRegistry()
        try:
            entry = registry.add(path=path)
            assert entry.source == str(path)
            # load_detector restores via load_state_dict, which bumps
            # the fresh model's version 0 -> 1.
            assert entry.version == 1
        finally:
            registry.close()


class TestHotSwap:
    def test_in_place_swap_bumps_version_and_keeps_engine(self, prepared,
                                                          detector):
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            engine_before = entry.engine
            outcome = registry.publish(
                DEFAULT_TENANT, detector=build_detector(prepared, seed=1))
            assert outcome["mode"] == "in-place"
            assert outcome["version"] == 1
            assert outcome["swaps"] == 1
            assert entry.engine is engine_before
            assert entry.version == 1
        finally:
            registry.close()

    def test_in_place_swap_changes_scores(self, prepared, detector):
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            features, lengths = encode_cells(detector, ["80,000", "98000"])
            before = entry.engine.predict_proba(features, lengths=lengths)
            registry.publish(DEFAULT_TENANT,
                             detector=build_detector(prepared, seed=1))
            after = entry.engine.predict_proba(features, lengths=lengths)
            assert not np.array_equal(before, after)
            # Swapping the original weights back restores them exactly.
            registry.publish(DEFAULT_TENANT,
                             detector=build_detector(prepared, seed=0))
            restored = entry.engine.predict_proba(features, lengths=lengths)
            np.testing.assert_array_equal(before, restored)
        finally:
            registry.close()

    def test_replace_swap_on_architecture_change(self, prepared, detector):
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            engine_before = entry.engine
            cache_before = entry.cache
            outcome = registry.publish(
                DEFAULT_TENANT,
                detector=build_detector(prepared, architecture="tsb"))
            assert outcome["mode"] == "replace"
            assert entry.engine is not engine_before
            # The tenant's prediction cache survives the replacement.
            assert entry.cache is cache_before
            assert entry.engine.cache is cache_before
        finally:
            registry.close()

    def test_publish_to_create(self, detector):
        registry = ModelRegistry()
        try:
            outcome = registry.publish("fresh", detector=detector)
            assert outcome["mode"] == "created"
            assert "fresh" in registry
        finally:
            registry.close()

    def test_publish_from_archive_updates_source(self, prepared, detector,
                                                 tmp_path):
        path = tmp_path / "v2.npz"
        save_detector(build_detector(prepared, seed=2), path)
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            outcome = registry.publish(DEFAULT_TENANT, path=path)
            assert outcome["mode"] == "in-place"
            assert entry.source == str(path)
        finally:
            registry.close()

    def test_swap_flushes_cache_exactly_once(self, prepared, detector):
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            features, lengths = encode_cells(detector, ["abc", "xyz"])
            for n_swaps in range(1, 4):
                entry.engine.predict_proba(features, lengths=lengths)
                entry.engine.predict_proba(features, lengths=lengths)
                before = entry.cache.stats()
                assert before["size"] > 0
                registry.publish(DEFAULT_TENANT,
                                 detector=build_detector(prepared,
                                                         seed=n_swaps))
                # The flush lands on the next lookup (sync_version) --
                # exactly one invalidation per version bump, however
                # many predictions follow.
                entry.engine.predict_proba(features, lengths=lengths)
                entry.engine.predict_proba(features, lengths=lengths)
                after = entry.cache.stats()
                assert (after["invalidations"]
                        == before["invalidations"] + 1)
        finally:
            registry.close()

    def test_stats_shape(self, detector):
        registry = ModelRegistry()
        try:
            registry.add(detector=detector)
            stats = registry.stats()
            assert set(stats) == {DEFAULT_TENANT}
            entry = stats[DEFAULT_TENANT]
            assert {"version", "swaps", "source", "cache",
                    "inference"} <= set(entry)
        finally:
            registry.close()
