"""Model registry: registration, in-place vs replace hot swap."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.serialization import save_detector
from repro.serving import ModelRegistry
from repro.serving.registry import DEFAULT_TENANT

from tests.serving.conftest import build_detector, encode_cells


class TestRegistration:
    def test_add_and_get(self, detector):
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            assert registry.get(DEFAULT_TENANT) is entry
            assert DEFAULT_TENANT in registry
            assert registry.tenants() == (DEFAULT_TENANT,)
            assert entry.version == 0
            assert entry.swaps == 0
        finally:
            registry.close()

    def test_duplicate_tenant_rejected(self, detector):
        registry = ModelRegistry()
        try:
            registry.add(detector=detector)
            with pytest.raises(ConfigurationError):
                registry.add(detector=detector)
        finally:
            registry.close()

    def test_unknown_tenant_raises_key_error(self):
        with pytest.raises(KeyError):
            ModelRegistry().get("ghost")

    def test_exactly_one_source_required(self, detector):
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError):
            registry.add()
        with pytest.raises(ConfigurationError):
            registry.add(detector=detector, path="m.npz")

    def test_unfitted_detector_rejected(self):
        from repro.models import ErrorDetector

        with pytest.raises(ConfigurationError):
            ModelRegistry().add(detector=ErrorDetector())

    def test_add_from_archive(self, detector, tmp_path):
        path = tmp_path / "m.npz"
        save_detector(detector, path)
        registry = ModelRegistry()
        try:
            entry = registry.add(path=path)
            assert entry.source == str(path)
            # load_detector restores via load_state_dict, which bumps
            # the fresh model's version 0 -> 1.
            assert entry.version == 1
        finally:
            registry.close()


class TestHotSwap:
    def test_in_place_swap_bumps_version_and_keeps_engine(self, prepared,
                                                          detector):
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            engine_before = entry.engine
            outcome = registry.publish(
                DEFAULT_TENANT, detector=build_detector(prepared, seed=1))
            assert outcome["mode"] == "in-place"
            assert outcome["version"] == 1
            assert outcome["swaps"] == 1
            assert entry.engine is engine_before
            assert entry.version == 1
        finally:
            registry.close()

    def test_in_place_swap_changes_scores(self, prepared, detector):
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            features, lengths = encode_cells(detector, ["80,000", "98000"])
            before = entry.engine.predict_proba(features, lengths=lengths)
            registry.publish(DEFAULT_TENANT,
                             detector=build_detector(prepared, seed=1))
            after = entry.engine.predict_proba(features, lengths=lengths)
            assert not np.array_equal(before, after)
            # Swapping the original weights back restores them exactly.
            registry.publish(DEFAULT_TENANT,
                             detector=build_detector(prepared, seed=0))
            restored = entry.engine.predict_proba(features, lengths=lengths)
            np.testing.assert_array_equal(before, restored)
        finally:
            registry.close()

    def test_replace_swap_on_architecture_change(self, prepared, detector):
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            engine_before = entry.engine
            cache_before = entry.cache
            outcome = registry.publish(
                DEFAULT_TENANT,
                detector=build_detector(prepared, architecture="tsb"))
            assert outcome["mode"] == "replace"
            assert entry.engine is not engine_before
            # The tenant's prediction cache survives the replacement.
            assert entry.cache is cache_before
            assert entry.engine.cache is cache_before
        finally:
            registry.close()

    def test_replace_swap_version_strictly_increases(self, prepared, detector,
                                                     tmp_path):
        # Every archive-loaded model sits at weights_version 1, so
        # swapping architecturally different archives back and forth
        # must still move the served version forward each time.
        path_a = tmp_path / "a.npz"
        path_b = tmp_path / "b.npz"
        save_detector(detector, path_a)
        save_detector(build_detector(prepared, architecture="tsb"), path_b)
        registry = ModelRegistry()
        try:
            entry = registry.add(path=path_a)
            seen = [entry.version]
            for path in (path_b, path_a, path_b):
                outcome = registry.publish(DEFAULT_TENANT, path=path)
                assert outcome["mode"] == "replace"
                assert entry.version > seen[-1]
                seen.append(entry.version)
        finally:
            registry.close()

    def test_replace_swap_never_serves_stale_cache(self, prepared, detector,
                                                   tmp_path):
        # Archives A and B encode identically (same dictionaries) but
        # differ architecturally; after the swap a warm cache entry
        # computed under A must not be returned as B's output.
        path_b = tmp_path / "b.npz"
        save_detector(build_detector(prepared, architecture="tsb"), path_b)
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            features, lengths = encode_cells(detector, ["80,000", "abc"])
            before = entry.engine.predict_proba(features, lengths=lengths)
            assert entry.cache.stats()["size"] > 0
            outcome = registry.publish(DEFAULT_TENANT, path=path_b)
            assert outcome["mode"] == "replace"
            after = entry.engine.predict_proba(features, lengths=lengths)
            assert not np.array_equal(before, after)
        finally:
            registry.close()

    def test_concurrent_publishes_never_corrupt(self, prepared, detector):
        # Two publishers race in-place and replace swaps on one tenant;
        # the in-place decision is taken under the swap lock, so no
        # publish may fail or leave a half-overwritten model: the final
        # weights must match one candidate exactly.
        import threading

        from repro.inference import InferenceEngine

        candidates = [(arch, seed) for arch in ("etsb", "tsb")
                      for seed in (1, 2, 3)]
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            errors = []

            def publisher(arch):
                try:
                    for seed in (1, 2, 3):
                        registry.publish(DEFAULT_TENANT,
                                         detector=build_detector(
                                             prepared, architecture=arch,
                                             seed=seed))
                except Exception as exc:  # noqa: BLE001 -- surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=publisher, args=(arch,))
                       for arch in ("etsb", "tsb")]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            features, lengths = encode_cells(detector, ["80,000", "abc"])
            served = entry.engine.predict_proba(features, lengths=lengths)
            references = []
            for arch, seed in candidates:
                engine = InferenceEngine(
                    build_detector(prepared, architecture=arch,
                                   seed=seed).model)
                try:
                    references.append(engine.predict_proba(features,
                                                           lengths=lengths))
                finally:
                    engine.close()
            assert any(np.array_equal(served, reference)
                       for reference in references)
        finally:
            registry.close()

    def test_publish_to_create(self, detector):
        registry = ModelRegistry()
        try:
            outcome = registry.publish("fresh", detector=detector)
            assert outcome["mode"] == "created"
            assert "fresh" in registry
        finally:
            registry.close()

    def test_publish_from_archive_updates_source(self, prepared, detector,
                                                 tmp_path):
        path = tmp_path / "v2.npz"
        save_detector(build_detector(prepared, seed=2), path)
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            outcome = registry.publish(DEFAULT_TENANT, path=path)
            assert outcome["mode"] == "in-place"
            assert entry.source == str(path)
        finally:
            registry.close()

    def test_swap_flushes_cache_exactly_once(self, prepared, detector):
        registry = ModelRegistry()
        try:
            entry = registry.add(detector=detector)
            features, lengths = encode_cells(detector, ["abc", "xyz"])
            for n_swaps in range(1, 4):
                entry.engine.predict_proba(features, lengths=lengths)
                entry.engine.predict_proba(features, lengths=lengths)
                before = entry.cache.stats()
                assert before["size"] > 0
                registry.publish(DEFAULT_TENANT,
                                 detector=build_detector(prepared,
                                                         seed=n_swaps))
                # The flush lands on the next lookup (sync_version) --
                # exactly one invalidation per version bump, however
                # many predictions follow.
                entry.engine.predict_proba(features, lengths=lengths)
                entry.engine.predict_proba(features, lengths=lengths)
                after = entry.cache.stats()
                assert (after["invalidations"]
                        == before["invalidations"] + 1)
        finally:
            registry.close()

    def test_stats_shape(self, detector):
        registry = ModelRegistry()
        try:
            registry.add(detector=detector)
            stats = registry.stats()
            assert set(stats) == {DEFAULT_TENANT}
            entry = stats[DEFAULT_TENANT]
            assert {"version", "swaps", "source", "cache",
                    "inference"} <= set(entry)
        finally:
            registry.close()
