"""Hot-swapping across detector families (ETSB -> attention).

The registry's replace path is family-agnostic: publishing an
architecturally different archive must rebuild the engine, bump the
served version strictly, flush the shared prediction cache exactly once,
and never let a micro-batch mix weight versions.  The engine-level
fingerprint keying is what makes the *shared* cache safe: two families
scoring identical feature rows under the same weights version must never
read each other's probabilities.
"""

import threading

import numpy as np

from repro.inference import InferenceEngine, PredictionCache, model_fingerprint
from repro.serving import MicroBatcher, ModelRegistry
from repro.serving.registry import DEFAULT_TENANT

from tests.serving.conftest import build_detector, encode_cells


class TestCrossFamilySwap:
    def test_publish_attn_over_etsb_replaces_and_flushes_once(self, prepared):
        etsb = build_detector(prepared, architecture="etsb", seed=0)
        attn = build_detector(prepared, architecture="attn", seed=1)
        values = ["80,000", "98000", "zzz", "8000"]
        features, lengths = encode_cells(etsb, values)

        reference_engine = InferenceEngine(attn.model)
        try:
            reference = reference_engine.predict_proba(features,
                                                       lengths=lengths)
        finally:
            reference_engine.close()

        registry = ModelRegistry()
        try:
            entry = registry.add(detector=etsb)
            before = entry.engine.predict_proba(features, lengths=lengths)
            assert len(entry.cache) > 0
            flushes_before = entry.cache.stats()["invalidations"]
            old_version = entry.version

            outcome = registry.publish(DEFAULT_TENANT, detector=attn)
            assert outcome["mode"] == "replace"
            assert outcome["version"] > old_version

            entry = registry.get(DEFAULT_TENANT)
            after = entry.engine.predict_proba(features, lengths=lengths)
            np.testing.assert_array_equal(after, reference)
            assert not np.array_equal(after, before)
            assert (entry.cache.stats()["invalidations"]
                    == flushes_before + 1)

            # A second scoring pass reuses the flushed cache: no
            # further invalidations, warm hits instead.
            entry.engine.predict_proba(features, lengths=lengths)
            assert (entry.cache.stats()["invalidations"]
                    == flushes_before + 1)
        finally:
            registry.close()

    def test_no_batch_mixes_versions_across_families(self, prepared):
        etsb = build_detector(prepared, architecture="etsb", seed=0)
        attn = build_detector(prepared, architecture="attn", seed=1)
        values = ["80,000", "98000", "zzz", "8000"]
        features, lengths = encode_cells(etsb, values)

        references = {}
        for name, detector in (("etsb", etsb), ("attn", attn)):
            engine = InferenceEngine(detector.model)
            try:
                references[name] = engine.predict_proba(features,
                                                        lengths=lengths)
            finally:
                engine.close()

        registry = ModelRegistry()
        batcher = MicroBatcher(registry, max_delay_s=0.002).start()
        results = []
        results_lock = threading.Lock()
        errors = []

        def worker():
            try:
                for _ in range(20):
                    result = batcher.predict(DEFAULT_TENANT, features,
                                             lengths)
                    with results_lock:
                        results.append(result)
            except Exception as exc:  # noqa: BLE001 -- surfaced below
                errors.append(exc)

        try:
            entry = registry.add(detector=etsb)
            version_of = {entry.version: "etsb"}
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            outcome = registry.publish(DEFAULT_TENANT, detector=attn)
            version_of[outcome["version"]] = "attn"
            for thread in threads:
                thread.join()
        finally:
            batcher.close()
            registry.close()

        assert not errors
        assert len(results) == 80
        for result in results:
            family = version_of[result.weights_version]
            np.testing.assert_array_equal(result.probabilities,
                                          references[family])


class TestSharedCacheFingerprintSegregation:
    def test_two_families_sharing_one_cache_never_collide(self, prepared):
        """Identical rows + identical version, different model family."""
        etsb = build_detector(prepared, architecture="etsb", seed=0)
        attn = build_detector(prepared, architecture="attn", seed=1)
        values = ["80,000", "98000", "zzz", "8000"]
        features, lengths = encode_cells(etsb, values)

        assert (model_fingerprint(etsb.model)
                != model_fingerprint(attn.model))
        assert etsb.model.weights_version == attn.model.weights_version

        bare = InferenceEngine(attn.model)
        try:
            reference = bare.predict_proba(features, lengths=lengths)
        finally:
            bare.close()

        cache = PredictionCache(capacity=4096)
        first = InferenceEngine(etsb.model, cache=cache)
        second = InferenceEngine(attn.model, cache=cache)
        try:
            etsb_probs = first.predict_proba(features, lengths=lengths)
            attn_probs = second.predict_proba(features, lengths=lengths)
        finally:
            first.close()
            second.close()
        np.testing.assert_array_equal(attn_probs, reference)
        assert not np.array_equal(attn_probs, etsb_probs)

    def test_explicit_fingerprint_overrides_the_derived_one(self, prepared):
        etsb = build_detector(prepared, architecture="etsb", seed=0)
        engine = InferenceEngine(etsb.model, fingerprint="member-a")
        try:
            assert engine.fingerprint == "member-a"
        finally:
            engine.close()
