"""Hot swap under concurrent scoring traffic.

The batcher executes each micro-batch under the tenant's swap lock, so
a publish can never interleave with a half-executed batch: every row of
a batch is scored under exactly one ``weights_version``.  These tests
hammer that invariant -- worker threads score continuously while the
main thread hot-swaps back and forth between two known weight sets, and
every returned slice must be byte-identical to the single-version
reference for the version it reports.
"""

import threading

import numpy as np

from repro.inference import InferenceEngine
from repro.serving import MicroBatcher, ModelRegistry
from repro.serving.registry import DEFAULT_TENANT

from tests.serving.conftest import build_detector, encode_cells

N_WORKERS = 4
N_REQUESTS = 25
N_SWAPS = 4


class TestConcurrentHotSwap:
    def test_no_batch_ever_mixes_weight_versions(self, prepared):
        values = ["80,000", "98000", "zzz", "8000"]
        detector = build_detector(prepared, seed=0)
        features, lengths = encode_cells(detector, values)

        # Single-version references: version parity identifies the
        # weight set (publish i swaps in seed 1 when i is odd, seed 0
        # when even; the registered model starts at version 0 = seed 0).
        references = {}
        for parity, seed in ((0, 0), (1, 1)):
            engine = InferenceEngine(build_detector(prepared,
                                                    seed=seed).model)
            try:
                references[parity] = engine.predict_proba(features,
                                                          lengths=lengths)
            finally:
                engine.close()

        registry = ModelRegistry()
        registry.add(detector=detector)
        batcher = MicroBatcher(registry, max_delay_s=0.002).start()
        results = []
        results_lock = threading.Lock()
        errors = []

        def worker():
            try:
                for _ in range(N_REQUESTS):
                    result = batcher.predict(DEFAULT_TENANT, features,
                                             lengths)
                    with results_lock:
                        results.append(result)
            except Exception as exc:  # noqa: BLE001 -- surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker)
                   for _ in range(N_WORKERS)]
        try:
            for thread in threads:
                thread.start()
            for i in range(1, N_SWAPS + 1):
                registry.publish(DEFAULT_TENANT,
                                 detector=build_detector(prepared,
                                                         seed=i % 2))
            for thread in threads:
                thread.join()
        finally:
            batcher.close()
            registry.close()

        assert not errors
        assert len(results) == N_WORKERS * N_REQUESTS
        observed_versions = {r.weights_version for r in results}
        assert observed_versions <= set(range(N_SWAPS + 1))
        # (a) every slice matches the single-version reference for the
        # version it reports -- old and new weights never mixed.
        for result in results:
            np.testing.assert_array_equal(
                result.probabilities,
                references[result.weights_version % 2])
        # (b) requests coalesced into the same batch report the same
        # version: a batch pins exactly one weight set.
        version_of_batch = {}
        for result in results:
            version_of_batch.setdefault(result.batch_id,
                                        result.weights_version)
            assert version_of_batch[result.batch_id] == result.weights_version

    def test_cache_invalidations_bounded_by_swaps(self, prepared):
        detector = build_detector(prepared, seed=0)
        features, lengths = encode_cells(detector, ["abc", "xyz"])
        registry = ModelRegistry()
        entry = registry.add(detector=detector)
        batcher = MicroBatcher(registry, max_delay_s=0.001).start()
        try:
            for i in range(1, N_SWAPS + 1):
                batcher.predict(DEFAULT_TENANT, features, lengths)
                registry.publish(DEFAULT_TENANT,
                                 detector=build_detector(prepared,
                                                         seed=i % 2))
            batcher.predict(DEFAULT_TENANT, features, lengths)
        finally:
            batcher.close()
            registry.close()
        # One flush per version bump, never more (the atomic
        # check-and-clear in PredictionCache.sync_version).
        assert entry.cache.stats()["invalidations"] == N_SWAPS
