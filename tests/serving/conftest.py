"""Shared fixtures for the serving tests.

The serving stack never trains: every fixture builds a tiny *untrained*
detector (randomly initialised weights around the paper-example
dictionaries), which exercises the full scoring path in milliseconds.
Detectors are function-scoped because in-place hot swaps mutate the
registered model's weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataprep import prepare
from repro.models import ErrorDetector, ModelConfig
from repro.models.detector import build_model
from repro.serving import MicroBatcher, ModelRegistry
from repro.serving.session import _encode
from repro.table import Table

TINY = ModelConfig(char_embed_dim=8, value_units=16, num_layers=1,
                   attr_embed_dim=4, attr_units=4, length_dense_units=4,
                   head_units=8)


def paper_tables() -> tuple[Table, Table]:
    dirty = Table({
        "A": ["21", "45", "30", "12", "26"],
        "Sal": ["80,000", "98000", "92000", "99000", "850"],
        "ZIP": ["8000", "00100", "75000", "BER", "75000"],
        "City": ["NaN", "Romr", "Paris", "Berlin", "Vienna"],
    })
    clean = Table({
        "A": ["21", "45", "30", "42", "26"],
        "Sal": ["80000", "98000", "92000", "99000", "85000"],
        "ZIP": ["8000", "00100", "75000", "10115", "1010"],
        "City": ["Zurich", "Rome", "Paris", "Berlin", "Vienna"],
    })
    return dirty, clean


@pytest.fixture(scope="session")
def prepared():
    dirty, clean = paper_tables()
    return prepare(dirty, clean)


def build_detector(prepared, architecture: str = "etsb",
                   seed: int = 0) -> ErrorDetector:
    """An untrained but fully servable detector over ``prepared``."""
    detector = ErrorDetector(architecture=architecture, model_config=TINY)
    detector.model = build_model(architecture, prepared, TINY,
                                 np.random.default_rng(seed))
    detector.model.eval()
    detector.prepared = prepared
    return detector


@pytest.fixture
def detector(prepared) -> ErrorDetector:
    return build_detector(prepared)


@pytest.fixture
def dirty_table() -> Table:
    return paper_tables()[0]


@pytest.fixture
def registry(detector) -> ModelRegistry:
    registry = ModelRegistry(cache_size=4096)
    registry.add(detector=detector)
    yield registry
    registry.close()


@pytest.fixture
def batcher(registry) -> MicroBatcher:
    batcher = MicroBatcher(registry, max_delay_s=0.002)
    yield batcher
    batcher.close()


def encode_cells(detector, values, attribute=None):
    """Feature rows for ``values`` under one attribute (default: first)."""
    attribute = attribute or detector.prepared.attributes[0]
    return _encode(detector, [str(v) for v in values],
                   [attribute] * len(values))
