"""Table sessions: incremental re-scoring and the swap fallback."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving.registry import DEFAULT_TENANT
from repro.serving.session import TableSession
from repro.table import Table

from tests.serving.conftest import build_detector, paper_tables


def _wider_prepared():
    """A prepared dataset over the same columns with a larger max_length."""
    from repro.dataprep import prepare

    dirty, clean = paper_tables()
    wide_dirty = {c: list(dirty.column(c).values) for c in dirty.column_names}
    wide_clean = {c: list(clean.column(c).values) for c in clean.column_names}
    wide_dirty["City"][0] = "Sankt Peter-Ording an der Nordsee"
    wide_clean["City"][0] = "Sankt Peter-Ording an der Nordsee"
    return prepare(Table(wide_dirty), Table(wide_clean))


@pytest.fixture
def session(registry, batcher, dirty_table):
    batcher.start()
    return TableSession("t", registry.get(DEFAULT_TENANT), dirty_table,
                        batcher)


class TestGeometry:
    def test_feature_rows_are_column_major(self, session, dirty_table):
        n = dirty_table.n_rows
        assert session.n_feature_rows == n * len(session.columns)
        for j, column in enumerate(session.columns):
            for row in range(n):
                assert session.feature_row(row, column) == j * n + row

    def test_unknown_column_rejected(self, session):
        with pytest.raises(ConfigurationError):
            session.feature_row(0, "ghost")

    def test_row_out_of_range_rejected(self, session):
        with pytest.raises(ConfigurationError):
            session.feature_row(99, session.columns[0])

    def test_affected_rows_is_the_edited_cell(self, session):
        affected = session.affected_feature_rows(2, session.columns[1])
        np.testing.assert_array_equal(
            affected, [session.feature_row(2, session.columns[1])])

    def test_no_matching_columns_rejected(self, registry, batcher):
        batcher.start()
        with pytest.raises(ConfigurationError):
            TableSession("t", registry.get(DEFAULT_TENANT),
                         Table({"unrelated": ["a", "b"]}), batcher)


class TestIncrementalUpdate:
    def test_update_rescores_one_row(self, session):
        record = session.update(1, session.columns[0], "999")
        assert record["n_rescored"] == 1
        assert record["full_rescore"] is False
        assert record["n_feature_rows"] == session.n_feature_rows
        assert session.values[session.feature_row(1, session.columns[0])] \
            == "999"

    def test_updated_scores_match_fresh_full_pass(self, registry, batcher,
                                                  session, dirty_table):
        column = session.columns[1]
        session.update(3, column, "different")
        # A brand-new session over the edited table pays one full
        # scoring pass; the incrementally maintained probabilities must
        # be byte-identical to it.
        edited = {name: list(dirty_table.column(name).values)
                  for name in dirty_table.column_names}
        edited[column][3] = "different"
        fresh = TableSession("fresh", registry.get(DEFAULT_TENANT),
                             Table(edited), batcher)
        np.testing.assert_array_equal(session.probabilities,
                                      fresh.probabilities)

    def test_update_none_clears_the_cell(self, session):
        record = session.update(0, session.columns[0], None)
        assert session.values[session.feature_row(0, session.columns[0])] == ""
        assert record["n_rescored"] == 1

    def test_replace_swap_with_wider_encoder_recovers(self, registry,
                                                      session):
        # A replace swap that changes the encoder's max_length must
        # rebuild the session's feature arrays wholesale; writing into
        # the old-width arrays would raise and wedge the session.
        wide = _wider_prepared()
        old_width = session.features["values"].shape[1]
        assert wide.max_length > old_width
        registry.publish(DEFAULT_TENANT, detector=build_detector(wide))
        record = session.update(0, session.columns[0], "x")
        assert record["full_rescore"] is True
        assert session.features["values"].shape[1] == wide.max_length
        # The session keeps working incrementally afterwards.
        record = session.update(1, session.columns[0], "y")
        assert record["full_rescore"] is False
        assert record["n_rescored"] == 1

    def test_mid_update_width_change_falls_back_to_full(self, registry,
                                                        session):
        wide = _wider_prepared()
        registry.publish(DEFAULT_TENANT, detector=build_detector(wide))
        # Simulate the swap landing after update()'s version check: the
        # incremental re-encode then produces rows of the new width,
        # which must trigger the full-rescore fallback, not a crash.
        session.scored_version = registry.get(DEFAULT_TENANT).version
        record = session.update(0, session.columns[0], "x")
        assert record["full_rescore"] is True
        assert session.features["values"].shape[1] == wide.max_length

    def test_swap_dropping_a_served_column_is_rejected(self, registry,
                                                       session):
        from repro.dataprep import prepare

        dirty, clean = paper_tables()
        dropped = session.columns[0]
        narrow = prepare(
            Table({c: list(dirty.column(c).values)
                   for c in dirty.column_names if c != dropped}),
            Table({c: list(clean.column(c).values)
                   for c in clean.column_names if c != dropped}))
        registry.publish(DEFAULT_TENANT, detector=build_detector(narrow))
        with pytest.raises(ConfigurationError, match="reload the session"):
            session.update(0, session.columns[1], "x")

    def test_swap_forces_full_rescore(self, prepared, registry, session):
        registry.publish(DEFAULT_TENANT,
                         detector=build_detector(prepared, seed=1))
        record = session.update(0, session.columns[0], "x")
        assert record["full_rescore"] is True
        assert record["n_rescored"] == session.n_feature_rows
        assert record["weights_version"] == 1
        # The next update is incremental again.
        record = session.update(1, session.columns[0], "y")
        assert record["full_rescore"] is False
        assert record["n_rescored"] == 1


class TestFeedbackAndStats:
    def test_feedback_recorded(self, session):
        assert session.add_feedback(0, session.columns[0], 1) == 1
        assert session.add_feedback(1, session.columns[0], 0) == 2
        entry = session.feedback[0]
        assert entry["row"] == 0
        assert entry["label"] == 1
        assert "predicted" in entry and "value" in entry

    def test_feedback_label_validated(self, session):
        with pytest.raises(ConfigurationError):
            session.add_feedback(0, session.columns[0], 2)

    def test_flagged_matches_predictions(self, session):
        predictions = session.predictions()
        flagged = session.flagged()
        assert len(flagged) == int((predictions == 1).sum())
        for row, attribute, value in flagged:
            index = session.feature_row(row, attribute)
            assert predictions[index] == 1
            assert session.values[index] == value

    def test_stats_shape(self, session, dirty_table):
        stats = session.stats()
        assert stats["n_table_rows"] == dirty_table.n_rows
        assert stats["n_feature_rows"] == session.n_feature_rows
        assert stats["n_feedback"] == 0
        assert stats["weights_version"] == 0
