"""Micro-batcher coalescing, admission control and value preservation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.inference import InferenceEngine
from repro.serving import MicroBatcher, Overloaded

from tests.serving.conftest import encode_cells


def queue_then_start(batcher, requests):
    """Enqueue every request before the batcher thread exists.

    Deterministic coalescing: by the time the thread starts, the first
    item's deadline has effectively arrived with the whole queue
    waiting, so everything admissible lands in one batch.
    """
    futures = [batcher.submit(*request) for request in requests]
    batcher.start()
    return [future.result(timeout=10) for future in futures]


class TestCoalescing:
    def test_concurrent_requests_share_one_batch(self, detector, batcher):
        features, lengths = encode_cells(detector, ["abc", "xy", "1", "qq"])
        requests = [("default",
                     {k: v[i:i + 1] for k, v in features.items()},
                     lengths[i:i + 1])
                    for i in range(4)]
        results = queue_then_start(batcher, requests)
        assert len({r.batch_id for r in results}) == 1
        assert all(r.batch_items == 4 for r in results)
        assert all(r.batch_rows == 4 for r in results)
        assert batcher.stats.n_batches == 1
        assert batcher.stats.mean_batch_items == 4.0

    def test_coalesced_scores_are_byte_identical_to_solo(self, prepared,
                                                         detector, batcher):
        from tests.serving.conftest import build_detector

        values = ["80,000", "98000", "zzz", "8000"]
        features, lengths = encode_cells(detector, values)
        requests = [("default",
                     {k: v[i:i + 1] for k, v in features.items()},
                     lengths[i:i + 1])
                    for i in range(len(values))]
        results = queue_then_start(batcher, requests)

        # Reference: each row alone through a fresh engine (same seed).
        reference_model = build_detector(prepared).model
        engine = InferenceEngine(reference_model)
        try:
            for i, result in enumerate(results):
                solo = engine.predict_proba(
                    {k: v[i:i + 1] for k, v in features.items()},
                    lengths=lengths[i:i + 1])
                np.testing.assert_array_equal(result.probabilities, solo)
        finally:
            engine.close()

    def test_coalesce_off_means_one_request_per_batch(self, detector,
                                                      registry):
        batcher = MicroBatcher(registry, coalesce=False)
        try:
            features, lengths = encode_cells(detector, ["a", "b"])
            requests = [("default",
                         {k: v[i:i + 1] for k, v in features.items()},
                         lengths[i:i + 1])
                        for i in range(2)]
            results = queue_then_start(batcher, requests)
            assert results[0].batch_id != results[1].batch_id
            assert all(r.batch_items == 1 for r in results)
            assert batcher.stats.n_batches == 2
        finally:
            batcher.close()

    def test_size_bound_splits_batches(self, detector, registry):
        batcher = MicroBatcher(registry, max_batch_rows=3, max_delay_s=0.002)
        try:
            features, lengths = encode_cells(detector, list("abcde"))
            requests = [("default",
                         {k: v[i:i + 1] for k, v in features.items()},
                         lengths[i:i + 1])
                        for i in range(5)]
            results = queue_then_start(batcher, requests)
            assert batcher.stats.n_batches == 2
            assert sorted(r.batch_rows for r in results) == [2, 2, 3, 3, 3]
        finally:
            batcher.close()

    def test_batches_never_mix_tenants(self, prepared, detector, registry):
        from tests.serving.conftest import build_detector

        registry.add("other", detector=build_detector(prepared, seed=1))
        batcher = MicroBatcher(registry, max_delay_s=0.002)
        try:
            features, lengths = encode_cells(detector, ["a", "b", "c"])
            one_row = [({k: v[i:i + 1] for k, v in features.items()},
                        lengths[i:i + 1]) for i in range(3)]
            results = queue_then_start(batcher, [
                ("default", *one_row[0]),
                ("other", *one_row[1]),
                ("default", *one_row[2]),
            ])
            assert results[0].batch_id == results[2].batch_id
            assert results[0].batch_items == 2
            assert results[1].batch_items == 1
            assert results[1].batch_id != results[0].batch_id
        finally:
            batcher.close()


class TestAdmissionControl:
    def test_full_queue_sheds_load(self, detector, registry):
        batcher = MicroBatcher(registry, max_queue_rows=2)
        features, lengths = encode_cells(detector, ["a", "b"])
        batcher.submit("default", features, lengths)  # fills the bound
        with pytest.raises(Overloaded):
            batcher.submit("default", features, lengths)
        assert batcher.stats.n_rejected == 1
        # The queued request still completes once the thread runs.
        batcher.start()
        batcher.close()

    def test_single_oversized_request_is_admitted_when_idle(self, detector,
                                                            registry):
        batcher = MicroBatcher(registry, max_queue_rows=2)
        try:
            features, lengths = encode_cells(detector, list("abcdef"))
            result = queue_then_start(
                batcher, [("default", features, lengths)])[0]
            assert result.batch_rows == 6
        finally:
            batcher.close()

    def test_submit_after_close_is_rejected(self, detector, batcher):
        features, lengths = encode_cells(detector, ["a"])
        batcher.start()
        batcher.close()
        with pytest.raises(Overloaded):
            batcher.submit("default", features, lengths)


class TestValidation:
    def test_unknown_tenant_fails_the_future(self, detector, batcher):
        features, lengths = encode_cells(detector, ["a"])
        future = batcher.submit("ghost", features, lengths)
        batcher.start()
        with pytest.raises(KeyError):
            future.result(timeout=10)

    def test_empty_request_rejected(self, batcher):
        with pytest.raises(ConfigurationError):
            batcher.submit("default", {})
        with pytest.raises(ConfigurationError):
            batcher.submit("default",
                           {"values": np.zeros((0, 4), dtype=np.int64)})

    def test_bounds_validated(self, registry):
        with pytest.raises(ConfigurationError):
            MicroBatcher(registry, max_batch_rows=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(registry, max_delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(registry, max_queue_rows=0)
