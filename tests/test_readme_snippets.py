"""The README's code snippets must actually run.

Executes the Python blocks of README.md in a shared namespace, with the
expensive calls scaled down by monkeypatching the training defaults.
Keeps the documentation honest: if the public API drifts, this fails.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"


def python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_blocks():
    assert len(python_blocks()) >= 2


def test_quickstart_block_runs():
    blocks = python_blocks()
    quickstart = blocks[0]
    assert "ErrorDetector" in quickstart
    # Scale the snippet down: tiny dataset and epochs.
    code = (quickstart
            .replace('load_dataset("hospital", n_rows=200)',
                     'load_dataset("hospital", n_rows=40)')
            .replace('ErrorDetector(architecture="etsb")',
                     'ErrorDetector(architecture="etsb", n_label_tuples=6, '
                     'training_config=__import__("repro").TrainingConfig(epochs=2))'))
    namespace: dict = {}
    exec(compile(code, "README-quickstart", "exec"), namespace)
    assert "result" in namespace


def test_interactive_block_runs():
    blocks = python_blocks()
    interactive = next(b for b in blocks if "fit_with_labels" in b)
    from repro.datasets import load
    from repro.table import write_csv
    import tempfile, os

    pair = load("beers", n_rows=30, seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = os.path.join(tmp, "employees.csv")
        write_csv(pair.dirty, csv_path)
        n_attrs = pair.n_attributes
        code = (interactive
                .replace('read_csv("employees.csv")',
                         f'read_csv({csv_path!r})')
                .replace("print(row)", "pass")
                .replace("return [0, 1, 0, 0]",
                         f"return [0] * {n_attrs}")
                .replace("ErrorDetector()",
                         'ErrorDetector(n_label_tuples=5, '
                         'training_config=__import__("repro").TrainingConfig(epochs=2))'))
        namespace: dict = {}
        exec(compile(code, "README-interactive", "exec"), namespace)
        assert "suspicious" in namespace
