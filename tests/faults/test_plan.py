"""Unit tests for the fault-plan harness itself.

The contracts: specs validate eagerly, triggers are deterministic given
the plan seed and the ``inject`` call sequence, activation routes
(programmatic, context-manager, environment variable) behave
identically, and triggered faults are visible to telemetry.
"""

import json

import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.faults import (
    ACTIONS,
    FAULTS_ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    INJECTION_POINTS,
    WorkerKilled,
    active_plan,
    clear_plan,
    describe_points,
    inject,
    install_plan,
    use_plan,
)


class TestFaultSpecValidation:
    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown injection point"):
            FaultSpec(point="nope.nothing", action="raise")

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError, match="action"):
            FaultSpec(point="cache.lookup", action="explode")

    @pytest.mark.parametrize("kwargs", [
        {"at_hit": 0},
        {"probability": 0.0},
        {"probability": 1.5},
        {"delay_seconds": -1.0},
        {"max_triggers": 0},
    ])
    def test_bad_numeric_fields_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultSpec(point="cache.lookup", action="raise", **kwargs)

    def test_every_registered_point_is_usable(self):
        for name in INJECTION_POINTS:
            FaultSpec(point=name, action="delay")

    def test_describe_points_lists_every_point(self):
        text = describe_points()
        for name in INJECTION_POINTS:
            assert name in text


class TestPlanFiring:
    def test_at_hit_fires_exactly_once(self):
        plan = FaultPlan([FaultSpec(point="cache.lookup", action="raise",
                                    at_hit=3)])
        with use_plan(plan):
            inject("cache.lookup")
            inject("cache.lookup")
            with pytest.raises(FaultInjected) as exc:
                inject("cache.lookup")
            assert exc.value.hit == 3
            inject("cache.lookup")  # hit 4: no further trigger
        assert plan.hits("cache.lookup") == 4
        assert plan.triggers() == (1,)

    def test_kill_is_base_exception(self):
        plan = FaultPlan([FaultSpec(point="cache.lookup", action="kill")])
        with use_plan(plan):
            with pytest.raises(WorkerKilled):
                try:
                    inject("cache.lookup")
                except Exception:  # noqa: BLE001 - the point of the test
                    pytest.fail("except Exception absorbed a kill")

    def test_match_filters_on_context(self):
        plan = FaultPlan([FaultSpec(point="trainer.epoch_end",
                                    action="raise", match={"epoch": 2})])
        with use_plan(plan):
            inject("trainer.epoch_end", epoch=0)
            inject("trainer.epoch_end", epoch=1)
            with pytest.raises(FaultInjected):
                inject("trainer.epoch_end", epoch=2)

    def test_max_triggers_caps_firing(self):
        plan = FaultPlan([FaultSpec(point="cache.lookup", action="raise",
                                    max_triggers=2)])
        with use_plan(plan):
            for _ in range(2):
                with pytest.raises(FaultInjected):
                    inject("cache.lookup")
            inject("cache.lookup")
        assert plan.triggers() == (2,)

    def test_probabilistic_firing_is_seed_deterministic(self):
        def trigger_pattern(seed):
            plan = FaultPlan([FaultSpec(point="cache.lookup", action="raise",
                                        probability=0.5)], seed=seed)
            pattern = []
            with use_plan(plan):
                for _ in range(32):
                    try:
                        inject("cache.lookup")
                        pattern.append(False)
                    except FaultInjected:
                        pattern.append(True)
            return pattern

        assert trigger_pattern(7) == trigger_pattern(7)
        assert any(trigger_pattern(7))          # some hits fire...
        assert not all(trigger_pattern(7))      # ...but not all
        assert trigger_pattern(7) != trigger_pattern(8)

    def test_reset_replays_identically(self):
        plan = FaultPlan([FaultSpec(point="cache.lookup", action="raise",
                                    probability=0.5)], seed=3)

        def run():
            fired = []
            for _ in range(16):
                try:
                    plan.fire("cache.lookup", {})
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
            return fired

        first = run()
        plan.reset()
        assert run() == first

    def test_delay_sleeps_and_continues(self):
        plan = FaultPlan([FaultSpec(point="cache.lookup", action="delay",
                                    delay_seconds=0.01, at_hit=1)])
        with use_plan(plan):
            inject("cache.lookup")  # must not raise
        assert plan.triggers() == (1,)

    def test_inject_without_plan_is_noop(self):
        clear_plan()
        inject("cache.lookup")
        inject("trainer.epoch_end", epoch=0)


class TestActivationRoutes:
    def test_install_and_clear(self):
        plan = FaultPlan([FaultSpec(point="cache.lookup", action="raise")])
        install_plan(plan)
        assert active_plan() is plan
        with pytest.raises(FaultInjected):
            inject("cache.lookup")
        clear_plan()
        assert active_plan() is None
        inject("cache.lookup")

    def test_use_plan_restores_previous(self):
        outer = FaultPlan()
        install_plan(outer)
        inner = FaultPlan([FaultSpec(point="cache.lookup", action="raise")])
        with use_plan(inner):
            assert active_plan() is inner
        assert active_plan() is outer

    def test_env_var_activation(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        FaultPlan([FaultSpec(point="cache.lookup", action="raise",
                             at_hit=1)]).save(path)
        monkeypatch.setenv(FAULTS_ENV_VAR, str(path))
        clear_plan(reset_env=True)
        with pytest.raises(FaultInjected):
            inject("cache.lookup")

    def test_env_var_resolved_once(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        FaultPlan().save(path)
        monkeypatch.setenv(FAULTS_ENV_VAR, str(path))
        clear_plan(reset_env=True)
        first = active_plan()
        assert first is not None
        assert active_plan() is first  # cached, not re-read per call


class TestSerialization:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan([
            FaultSpec(point="runner.task_start", action="kill",
                      match={"task_index": 2}),
            FaultSpec(point="trainer.batch_step", action="raise",
                      at_hit=5, probability=0.5, max_triggers=3),
            FaultSpec(point="cache.lookup", action="delay",
                      delay_seconds=0.25),
        ], seed=42)
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.seed == 42
        assert loaded.specs == plan.specs

    def test_plan_file_is_plain_json(self, tmp_path):
        path = tmp_path / "plan.json"
        FaultPlan([FaultSpec(point="cache.lookup", action="raise")]).save(path)
        payload = json.loads(path.read_text())
        assert payload["specs"][0]["point"] == "cache.lookup"

    def test_bad_plan_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            FaultPlan.load(path)
        path.write_text(json.dumps({"specs": [{"point": "cache.lookup"}]}))
        with pytest.raises(ConfigurationError):
            FaultPlan.load(path)

    def test_exceptions_survive_pickling(self):
        import pickle

        for exc in (FaultInjected("cache.lookup", 3),
                    WorkerKilled("runner.task_start", 1)):
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert (clone.point, clone.hit) == (exc.point, exc.hit)


class TestTelemetry:
    def test_triggers_count_into_registry(self):
        registry = telemetry.MetricsRegistry()
        sink = telemetry.MemorySink()
        registry.add_sink(sink)
        plan = FaultPlan([FaultSpec(point="cache.lookup", action="raise")])
        with telemetry.use_telemetry(registry), use_plan(plan):
            for _ in range(3):
                with pytest.raises(FaultInjected):
                    inject("cache.lookup")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["faults.injected"] == 3
        assert snapshot["counters"]["faults.raise"] == 3
        fault_records = [r for r in sink.records if r.get("type") == "fault"]
        assert len(fault_records) == 3
        assert fault_records[0]["point"] == "cache.lookup"

    def test_every_action_has_a_counter(self):
        assert set(ACTIONS) == {"raise", "kill", "delay"}
