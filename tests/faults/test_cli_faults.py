"""CLI surface of the fault harness: ``repro faults`` and the durable
benchmark flags (``--resume``, ``--max-retries``, ``--task-timeout``)."""

import pytest

from repro.cli import build_parser, main
from repro.faults import FaultPlan, FaultSpec, INJECTION_POINTS

BENCH = ["--dataset", "hospital", "--rows", "40", "--runs", "2",
         "--tuples", "6", "--epochs", "2"]


class TestParser:
    def test_benchmark_durability_flags(self):
        args = build_parser().parse_args(
            ["benchmark", *BENCH, "--resume", "j.jsonl",
             "--max-retries", "3", "--task-timeout", "10.5"])
        assert args.resume == "j.jsonl"
        assert args.max_retries == 3
        assert args.task_timeout == 10.5

    def test_benchmark_durability_defaults(self):
        args = build_parser().parse_args(["benchmark", *BENCH])
        assert args.resume is None
        assert args.max_retries == 0
        assert args.task_timeout is None

    def test_faults_run_requires_plan(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "run", *BENCH])


class TestFaultsList:
    def test_lists_every_point(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in INJECTION_POINTS:
            assert name in out


class TestFaultsRun:
    def test_clean_plan_exits_zero(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        FaultPlan().save(plan_path)
        assert main(["faults", "run", "--plan", str(plan_path), *BENCH]) == 0
        assert "F1" in capsys.readouterr().out

    def test_kill_then_resume_via_cli(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        FaultPlan([FaultSpec(point="runner.task_start", action="kill",
                             match={"task_index": 1})]).save(plan_path)
        journal = tmp_path / "runs.jsonl"
        code = main(["faults", "run", "--plan", str(plan_path),
                     "--resume", str(journal), *BENCH])
        assert code == 1
        err = capsys.readouterr().err
        assert "killed by injected fault" in err
        assert journal.exists()

        # the re-invocation without the plan completes the sweep
        assert main(["benchmark", "--resume", str(journal), *BENCH]) == 0
        assert "F1" in capsys.readouterr().out

    def test_retries_absorb_transient_fault(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        FaultPlan([FaultSpec(point="runner.task_start", action="raise",
                             match={"task_index": 0, "attempt": 0})]).save(
            plan_path)
        code = main(["faults", "run", "--plan", str(plan_path),
                     "--max-retries", "2", *BENCH])
        assert code == 0
        assert "fault triggered: runner.task_start [raise] x1" \
            in capsys.readouterr().err

    def test_degraded_benchmark_reports_failures(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        FaultPlan([FaultSpec(point="runner.task_start", action="raise",
                             match={"task_index": 1})]).save(plan_path)
        code = main(["faults", "run", "--plan", str(plan_path),
                     "--max-retries", "1", *BENCH])
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED task 1" in captured.err
        assert "F1" in captured.out  # partial aggregate still printed
