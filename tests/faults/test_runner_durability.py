"""Durable experiment execution: retry, journal resume, degradation.

The acceptance contract: kill the sweep at any task index, re-invoke
with the same journal, and the aggregated result equals the failure-free
run's.  Retries absorb transient (``Exception``) failures only -- a
``kill`` is a ``BaseException`` and always escapes, exactly like the
SIGKILL it stands in for.
"""

import json

import pytest

from repro import telemetry
from repro.errors import ExperimentError
from repro.experiments import TaskJournal, run_experiment, task_key
from repro.experiments.journal import run_result_from_json, run_result_to_json
from repro.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultSpec,
    WorkerKilled,
    clear_plan,
    use_plan,
)

from tests.faults.conftest import SETTINGS


def reports(result):
    return [run.report for run in result.runs]


@pytest.fixture(scope="module")
def reference(pair):
    return run_experiment(pair, **SETTINGS)


class TestRetry:
    def test_transient_failure_absorbed(self, pair, reference):
        plan = FaultPlan([FaultSpec(point="runner.task_start",
                                    action="raise",
                                    match={"task_index": 1, "attempt": 0})])
        with use_plan(plan):
            result = run_experiment(pair, **SETTINGS, max_retries=2,
                                    retry_backoff=0.0)
        assert reports(result) == reports(reference)
        assert result.failures == ()

    def test_retries_exhausted_raises_by_default(self, pair):
        plan = FaultPlan([FaultSpec(point="runner.task_start",
                                    action="raise", match={"task_index": 0})])
        with use_plan(plan):
            with pytest.raises(ExperimentError, match="after 2 attempt"):
                run_experiment(pair, **SETTINGS, max_retries=1,
                               retry_backoff=0.0)

    def test_graceful_degradation_records_failure(self, pair, reference):
        plan = FaultPlan([FaultSpec(point="runner.task_end",
                                    action="raise", match={"task_index": 2})])
        with use_plan(plan):
            result = run_experiment(pair, **SETTINGS, max_retries=1,
                                    retry_backoff=0.0, fail_fast=False)
        assert len(result.runs) == SETTINGS["n_runs"] - 1
        assert reports(result) == reports(reference)[:-1]
        (failure,) = result.failures
        assert failure.task_index == 2
        assert failure.attempts == 2
        assert failure.error_type == "FaultInjected"

    def test_kill_never_retried(self, pair):
        plan = FaultPlan([FaultSpec(point="runner.task_start",
                                    action="kill", match={"task_index": 0})])
        with use_plan(plan):
            with pytest.raises(WorkerKilled):
                run_experiment(pair, **SETTINGS, max_retries=5,
                               retry_backoff=0.0, fail_fast=False)

    def test_invalid_durability_args_rejected(self, pair):
        with pytest.raises(ExperimentError, match="max_retries"):
            run_experiment(pair, **SETTINGS, max_retries=-1)
        with pytest.raises(ExperimentError, match="retry_backoff"):
            run_experiment(pair, **SETTINGS, retry_backoff=-0.5)
        with pytest.raises(ExperimentError, match="task_timeout"):
            run_experiment(pair, **SETTINGS, task_timeout=0.0)

    def test_retry_telemetry_counters(self, pair):
        plan = FaultPlan([FaultSpec(point="runner.task_start",
                                    action="raise",
                                    match={"task_index": 0, "attempt": 0})])
        registry = telemetry.MetricsRegistry()
        with telemetry.use_telemetry(registry), use_plan(plan):
            run_experiment(pair, **SETTINGS, max_retries=1, retry_backoff=0.0)
        counters = registry.snapshot()["counters"]
        assert counters["retry.attempts"] == 1
        assert counters["retry.successes"] == 1
        assert counters["faults.injected"] == 1
        assert counters["runner.tasks_completed"] == SETTINGS["n_runs"]


class TestJournal:
    def test_kill_then_resume_matches_reference(self, tmp_path, pair,
                                                reference):
        journal_path = tmp_path / "runs.jsonl"
        plan = FaultPlan([FaultSpec(point="runner.task_start",
                                    action="kill", match={"task_index": 1})])
        with use_plan(plan):
            with pytest.raises(WorkerKilled):
                run_experiment(pair, **SETTINGS, journal_path=journal_path)
        # Task 0 completed and is journalled; the re-invocation (no
        # faults -- the "fixed environment" rerun) finishes the rest.
        resumed = run_experiment(pair, **SETTINGS, journal_path=journal_path)
        assert reports(resumed) == reports(reference)
        assert [r.seed for r in resumed.runs] == [r.seed
                                                  for r in reference.runs]

    def test_completed_tasks_are_skipped(self, tmp_path, pair):
        journal_path = tmp_path / "runs.jsonl"
        run_experiment(pair, **SETTINGS, journal_path=journal_path)
        registry = telemetry.MetricsRegistry()
        with telemetry.use_telemetry(registry):
            again = run_experiment(pair, **SETTINGS,
                                   journal_path=journal_path)
        counters = registry.snapshot()["counters"]
        assert counters.get("runner.tasks_skipped") == SETTINGS["n_runs"]
        assert "runner.tasks_completed" not in counters
        assert len(again.runs) == SETTINGS["n_runs"]

    def test_fingerprint_mismatch_rejected(self, tmp_path, pair):
        journal_path = tmp_path / "runs.jsonl"
        run_experiment(pair, **SETTINGS, journal_path=journal_path)
        with pytest.raises(ExperimentError, match="fingerprint"):
            run_experiment(pair, **{**SETTINGS, "n_label_tuples": 8},
                           journal_path=journal_path)

    def test_widening_n_runs_reuses_journal(self, tmp_path, pair):
        journal_path = tmp_path / "runs.jsonl"
        run_experiment(pair, **{**SETTINGS, "n_runs": 2},
                       journal_path=journal_path)
        registry = telemetry.MetricsRegistry()
        with telemetry.use_telemetry(registry):
            widened = run_experiment(pair, **SETTINGS,
                                     journal_path=journal_path)
        counters = registry.snapshot()["counters"]
        assert counters["runner.tasks_skipped"] == 2
        assert counters["runner.tasks_completed"] == 1
        assert len(widened.runs) == SETTINGS["n_runs"]

    def test_torn_trailing_line_ignored(self, tmp_path, pair, reference):
        journal_path = tmp_path / "runs.jsonl"
        run_experiment(pair, **{**SETTINGS, "n_runs": 2},
                       journal_path=journal_path)
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "task", "key": "hospital:2", "res')
        resumed = run_experiment(pair, **SETTINGS, journal_path=journal_path)
        assert reports(resumed) == reports(reference)

    def test_non_journal_file_rejected(self, tmp_path, pair):
        journal_path = tmp_path / "runs.jsonl"
        journal_path.write_text('{"something": "else"}\n')
        with pytest.raises(ExperimentError, match="not a task journal"):
            run_experiment(pair, **SETTINGS, journal_path=journal_path)

    def test_run_result_json_round_trip(self, reference):
        for run in reference.runs:
            clone = run_result_from_json(
                json.loads(json.dumps(run_result_to_json(run))))
            assert clone == run

    def test_journal_direct_api(self, tmp_path, reference):
        journal = TaskJournal(tmp_path / "j.jsonl", {"config": 1})
        assert journal.load() == {}
        run = reference.runs[0]
        journal.record(task_key("hospital", run.seed), run)
        reloaded = TaskJournal(tmp_path / "j.jsonl", {"config": 1}).load()
        assert reloaded == {task_key("hospital", run.seed): run}


@pytest.mark.chaos
class TestChaosSweep:
    """Kill at every task index; --resume must equal the clean run."""

    @pytest.mark.parametrize("backend", ["fused", "graph"])
    def test_kill_every_task_index_then_resume(self, tmp_path, backend,
                                               pair):
        from repro.nn import use_backend

        with use_backend(backend):
            reference = run_experiment(pair, **SETTINGS)
            for kill_index in range(SETTINGS["n_runs"]):
                journal_path = tmp_path / f"{backend}-{kill_index}.jsonl"
                plan = FaultPlan([FaultSpec(point="runner.task_start",
                                            action="kill",
                                            match={"task_index": kill_index})])
                with use_plan(plan):
                    with pytest.raises(WorkerKilled):
                        run_experiment(pair, **SETTINGS,
                                       journal_path=journal_path)
                resumed = run_experiment(pair, **SETTINGS,
                                         journal_path=journal_path)
                assert reports(resumed) == reports(reference)
                assert resumed.failures == ()

    def test_pooled_kill_and_resume(self, tmp_path, pair, monkeypatch):
        """The env-var route: workers inherit the plan, kill propagates."""
        reference = run_experiment(pair, **SETTINGS)
        plan_path = tmp_path / "plan.json"
        FaultPlan([FaultSpec(point="runner.task_start", action="kill",
                             match={"task_index": 1})]).save(plan_path)
        journal_path = tmp_path / "runs.jsonl"
        monkeypatch.setenv(FAULTS_ENV_VAR, str(plan_path))
        clear_plan(reset_env=True)
        with pytest.raises(WorkerKilled):
            run_experiment(pair, **SETTINGS, n_workers=2,
                           journal_path=journal_path)
        monkeypatch.delenv(FAULTS_ENV_VAR)
        clear_plan(reset_env=True)
        resumed = run_experiment(pair, **SETTINGS, n_workers=2,
                                 journal_path=journal_path)
        assert reports(resumed) == reports(reference)
