"""Shared fixtures for the fault-injection suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FAULTS_ENV_VAR, clear_plan
from repro.models import ModelConfig

#: Tiny architecture shared by every chaos experiment (seconds, not minutes).
TINY = ModelConfig(char_embed_dim=6, value_units=8, attr_embed_dim=3,
                   attr_units=3, length_dense_units=6, head_units=8)

#: Experiment settings matching the parallel-runner suite's idiom.
SETTINGS = dict(n_runs=3, n_label_tuples=6, epochs=2, model_config=TINY)


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    """Every test starts and ends without an active plan or env override."""
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    clear_plan(reset_env=True)
    yield
    clear_plan(reset_env=True)


@pytest.fixture(scope="module")
def pair():
    from repro.datasets import load

    return load("hospital", n_rows=40, seed=4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)
