"""Crash-safe training: checkpointing, resume, and bit-identity.

The core contract: killing training after any epoch and resuming from
the epoch checkpoint yields final weights byte-identical to the
uninterrupted run -- the checkpoint carries the model, the optimizer
slots, the shuffling RNG state and every callback's state, so the
resumed trajectory is the same trajectory.
"""

import os

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.ops import softmax
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec, WorkerKilled, use_plan
from repro.models.serialization import (
    load_training_checkpoint,
    save_training_checkpoint,
)
from repro.nn import RMSprop, Trainer
from repro.nn.callbacks import BestWeightsCheckpoint, EarlyStopping
from repro.nn.module import Module, Parameter
from repro.nn.schedules import LearningRateScheduler, StepDecay


class TinyClassifier(Module):
    """Minimal two-class model; enough structure for real optimization."""

    def __init__(self, rng: np.random.Generator):
        super().__init__()
        self.w = Parameter(rng.normal(size=(4, 2)) * 0.3, name="w")
        self.b = Parameter(np.zeros(2), name="b")

    def forward(self, features):
        return softmax(Tensor(features["x"]) @ self.w + self.b)


def _loss(probs, labels):
    picked = probs[np.arange(labels.shape[0]), labels]
    return -(picked.log().sum() / labels.shape[0])


def make_data(n=32, seed=7):
    rng = np.random.default_rng(seed)
    return {"x": rng.normal(size=(n, 4))}, rng.integers(0, 2, size=n)


def make_trainer(seed=0, with_schedule=True):
    model = TinyClassifier(np.random.default_rng(seed))
    optimizer = RMSprop(model.parameters(), learning_rate=0.01)
    callbacks = [BestWeightsCheckpoint(), EarlyStopping(patience=50)]
    if with_schedule:
        callbacks.append(LearningRateScheduler(
            optimizer, StepDecay(0.01, factor=0.5, step_epochs=3)))
    return Trainer(model=model, optimizer=optimizer, loss_fn=_loss,
                   rng=np.random.default_rng(123), callbacks=callbacks)


def final_state(trainer):
    return {k: v.copy() for k, v in trainer.model.state_dict().items()}


def assert_identical(a, b):
    assert set(a) == set(b)
    for key in a:
        assert a[key].tobytes() == b[key].tobytes(), key


class TestCheckpointFile:
    def test_save_load_round_trip(self, tmp_path):
        trainer = make_trainer()
        feats, labels = make_data()
        trainer.fit(feats, labels, epochs=3, batch_size=8)
        path = tmp_path / "ck.npz"
        save_training_checkpoint(path, trainer.model, trainer.optimizer,
                                 epoch=2, rng=trainer.rng,
                                 callbacks=trainer._all_callbacks)
        ckpt = load_training_checkpoint(path)
        assert ckpt.epoch == 2
        assert_identical(ckpt.model_state, trainer.model.state_dict())
        assert ckpt.rng_state == trainer.rng.bit_generator.state
        assert ckpt.callback_types == tuple(
            type(cb).__name__ for cb in trainer._all_callbacks)

    def test_atomic_write_keeps_previous_on_failure(self, tmp_path,
                                                    monkeypatch):
        trainer = make_trainer()
        path = tmp_path / "ck.npz"
        save_training_checkpoint(path, trainer.model, trainer.optimizer,
                                 epoch=0, rng=trainer.rng)
        before = path.read_bytes()

        import numpy as _np
        real_savez = _np.savez

        def exploding_savez(file, **arrays):
            real_savez(file, **{k: arrays[k] for k in list(arrays)[:1]})
            raise OSError("disk full")

        monkeypatch.setattr(_np, "savez", exploding_savez)
        with pytest.raises(OSError):
            save_training_checkpoint(path, trainer.model, trainer.optimizer,
                                     epoch=1, rng=trainer.rng)
        monkeypatch.undo()
        assert path.read_bytes() == before          # old checkpoint intact
        assert load_training_checkpoint(path).epoch == 0
        assert not [p for p in tmp_path.iterdir()   # no temp litter
                    if ".tmp" in p.name]

    def test_non_checkpoint_file_rejected(self, tmp_path):
        from repro.errors import DataError

        path = tmp_path / "junk.npz"
        np.savez(path, meta=np.asarray('{"format": "something-else"}'))
        with pytest.raises(DataError):
            load_training_checkpoint(path)


class TestResume:
    @pytest.mark.parametrize("kill_after", range(6))
    def test_resume_is_bit_identical(self, tmp_path, kill_after):
        feats, labels = make_data()
        epochs = 6
        reference = make_trainer()
        reference.fit(feats, labels, epochs=epochs, batch_size=8)
        ref = final_state(reference)

        path = tmp_path / "ck.npz"
        first = make_trainer()
        first.fit(feats, labels, epochs=kill_after + 1, batch_size=8,
                  checkpoint_path=path)
        resumed = make_trainer()  # fresh process: everything rebuilt
        resumed.fit(feats, labels, epochs=epochs, batch_size=8,
                    checkpoint_path=path, resume_from=path)
        assert_identical(final_state(resumed), ref)

    def test_missing_resume_file_starts_fresh(self, tmp_path):
        feats, labels = make_data()
        reference = make_trainer()
        reference.fit(feats, labels, epochs=4, batch_size=8)
        fresh = make_trainer()
        fresh.fit(feats, labels, epochs=4, batch_size=8,
                  resume_from=tmp_path / "never-written.npz")
        assert_identical(final_state(fresh), final_state(reference))

    def test_history_spans_both_halves(self, tmp_path):
        feats, labels = make_data()
        path = tmp_path / "ck.npz"
        first = make_trainer()
        first.fit(feats, labels, epochs=2, batch_size=8,
                  checkpoint_path=path)
        resumed = make_trainer()
        history = resumed.fit(feats, labels, epochs=5, batch_size=8,
                              resume_from=path)
        assert history.epochs == [0, 1, 2, 3, 4]
        reference = make_trainer()
        full = reference.fit(feats, labels, epochs=5, batch_size=8)
        assert history.series("loss") == full.series("loss")

    def test_checkpoint_every_still_writes_final_epoch(self, tmp_path):
        feats, labels = make_data()
        path = tmp_path / "ck.npz"
        trainer = make_trainer()
        trainer.fit(feats, labels, epochs=5, batch_size=8,
                    checkpoint_path=path, checkpoint_every=3)
        assert load_training_checkpoint(path).epoch == 4

    def test_mismatched_callbacks_rejected(self, tmp_path):
        feats, labels = make_data()
        path = tmp_path / "ck.npz"
        make_trainer(with_schedule=True).fit(
            feats, labels, epochs=1, batch_size=8, checkpoint_path=path)
        other = make_trainer(with_schedule=False)
        with pytest.raises(ConfigurationError, match="callbacks"):
            other.fit(feats, labels, epochs=2, batch_size=8,
                      resume_from=path)

    def test_invalid_checkpoint_every_rejected(self):
        feats, labels = make_data()
        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            make_trainer().fit(feats, labels, epochs=1, batch_size=8,
                               checkpoint_every=0)

    def test_optimizer_state_resumes(self, tmp_path):
        feats, labels = make_data()
        path = tmp_path / "ck.npz"
        trainer = make_trainer()
        trainer.fit(feats, labels, epochs=3, batch_size=8,
                    checkpoint_path=path)
        resumed = make_trainer()
        resumed._restore_checkpoint(path)
        for a, b in zip(trainer.optimizer._mean_square,
                        resumed.optimizer._mean_square):
            assert a.tobytes() == b.tobytes()
        assert resumed.optimizer.learning_rate == trainer.optimizer.learning_rate


class TestKillFaultsInTraining:
    def test_kill_at_epoch_end_then_resume(self, tmp_path):
        """The harshest window: die after callbacks but before the save."""
        feats, labels = make_data()
        epochs = 5
        reference = make_trainer()
        reference.fit(feats, labels, epochs=epochs, batch_size=8)
        ref = final_state(reference)

        path = tmp_path / "ck.npz"
        plan = FaultPlan([FaultSpec(point="trainer.epoch_end",
                                    action="kill", match={"epoch": 3})])
        victim = make_trainer()
        with use_plan(plan):
            with pytest.raises(WorkerKilled):
                victim.fit(feats, labels, epochs=epochs, batch_size=8,
                           checkpoint_path=path)
        # Epoch 3 died before its checkpoint: the file holds epoch 2 and
        # the resumed run replays epochs 3 and 4.
        assert load_training_checkpoint(path).epoch == 2
        resumed = make_trainer()
        resumed.fit(feats, labels, epochs=epochs, batch_size=8,
                    checkpoint_path=path, resume_from=path)
        assert_identical(final_state(resumed), ref)

    def test_kill_mid_epoch_then_resume(self, tmp_path):
        """A batch-step kill loses the partial epoch, never the checkpoint."""
        feats, labels = make_data()
        epochs = 5
        reference = make_trainer()
        reference.fit(feats, labels, epochs=epochs, batch_size=8)
        ref = final_state(reference)

        path = tmp_path / "ck.npz"
        plan = FaultPlan([FaultSpec(point="trainer.batch_step",
                                    action="kill",
                                    match={"epoch": 2, "batch": 1})])
        victim = make_trainer()
        with use_plan(plan):
            with pytest.raises(WorkerKilled):
                victim.fit(feats, labels, epochs=epochs, batch_size=8,
                           checkpoint_path=path)
        assert load_training_checkpoint(path).epoch == 1
        resumed = make_trainer()
        resumed.fit(feats, labels, epochs=epochs, batch_size=8,
                    checkpoint_path=path, resume_from=path)
        assert_identical(final_state(resumed), ref)


@pytest.mark.chaos
class TestDetectorChaosSweep:
    """Kill-at-every-epoch sweep on the real detector, both backends."""

    @pytest.mark.parametrize("backend", ["fused", "graph"])
    def test_every_epoch_kill_resumes_bit_identical(self, tmp_path, backend,
                                                    pair):
        from repro.nn import use_backend
        from tests.faults.conftest import TINY

        from repro.models import ErrorDetector, TrainingConfig

        epochs = 3

        def fit_detector(checkpoint_path=None, resume_from=None):
            detector = ErrorDetector(
                architecture="etsb", n_label_tuples=6, model_config=TINY,
                training_config=TrainingConfig(epochs=epochs), seed=0)
            detector.fit(pair, checkpoint_path=checkpoint_path,
                         resume_from=resume_from)
            return detector

        with use_backend(backend):
            ref = {k: v.copy()
                   for k, v in fit_detector().model.state_dict().items()}
            for kill_epoch in range(epochs):
                path = tmp_path / f"{backend}-{kill_epoch}.npz"
                plan = FaultPlan([FaultSpec(point="trainer.epoch_end",
                                            action="kill",
                                            match={"epoch": kill_epoch})])
                with use_plan(plan):
                    with pytest.raises(WorkerKilled):
                        fit_detector(checkpoint_path=path)
                if kill_epoch == 0:
                    assert not os.path.exists(path)
                resumed = fit_detector(checkpoint_path=path,
                                       resume_from=path)
                assert_identical(resumed.model.state_dict(), ref)
