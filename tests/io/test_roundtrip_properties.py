"""Hypothesis round-trip properties for the ingestion layer.

The contract: a table serialised to CSV bytes under *any* supported
encoding and dialect -- BOMs, embedded quotes and newlines, ragged
tails, non-ASCII cells -- comes back through
:func:`repro.io.read_delimited_bytes` cell-identical, and the column
analyzers give the same verdict before and after the trip (they are
pure functions of the cell values).
"""

import csv
import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import analyze_column, detect_encoding, read_delimited_bytes

ENCODINGS = ("utf-8", "utf-8-sig", "utf-16-le", "utf-16-be",
             "utf-16", "latin-1")
DELIMITERS = (",", ";", "\t", "|")

# Latin-1 covers exactly U+0000..U+00FF; the shared alphabet keeps every
# encoding in ENCODINGS applicable.  Control characters are excluded
# except the ones the quoting machinery must survive (newline inside a
# quoted field); NUL is exercised separately by the corpus suite.
_CELL_ALPHABET = st.characters(
    min_codepoint=0x20, max_codepoint=0xFF,
    exclude_characters="\x7f")
_cells = st.text(alphabet=_CELL_ALPHABET, max_size=12)
_quoted_cells = st.text(
    alphabet=st.one_of(_CELL_ALPHABET, st.sampled_from('"\n')),
    max_size=12)

_names = st.text(
    alphabet=st.characters(min_codepoint=0x41, max_codepoint=0x7A),
    min_size=1, max_size=8)


@st.composite
def _tables(draw):
    n_cols = draw(st.integers(min_value=1, max_value=4))
    n_rows = draw(st.integers(min_value=1, max_value=6))
    names = draw(st.lists(_names, min_size=n_cols, max_size=n_cols,
                          unique=True))
    rows = [draw(st.lists(_quoted_cells, min_size=n_cols, max_size=n_cols))
            for _ in range(n_rows)]
    return names, rows


def _to_csv_bytes(names, rows, delimiter, encoding):
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter,
                        quoting=csv.QUOTE_ALL, lineterminator="\r\n")
    writer.writerow(names)
    writer.writerows(rows)
    return buffer.getvalue().encode(encoding)


@given(table=_tables(),
       delimiter=st.sampled_from(DELIMITERS),
       encoding=st.sampled_from(ENCODINGS))
@settings(max_examples=120, deadline=None)
def test_roundtrip_cell_identical(table, delimiter, encoding):
    """encode -> ingest returns byte-identical cells under any dialect."""
    names, rows = table
    data = _to_csv_bytes(names, rows, delimiter, encoding)
    ingested = read_delimited_bytes(data, name="t")
    assert ingested.table.column_names == list(names)
    assert ingested.table.n_rows == len(rows)
    for j, name in enumerate(names):
        got = ["" if v is None else v
               for v in ingested.table.column(name).values]
        assert got == [row[j] for row in rows], (
            f"column {name!r} mutated through the {encoding}/{delimiter!r} "
            f"round trip")


@given(table=_tables(), encoding=st.sampled_from(ENCODINGS))
@settings(max_examples=60, deadline=None)
def test_roundtrip_analyzer_stable(table, encoding):
    """Analyzer verdicts are identical before and after the round trip."""
    names, rows = table
    data = _to_csv_bytes(rows=rows, names=names, delimiter=",",
                         encoding=encoding)
    ingested = read_delimited_bytes(data, name="t")
    for j, name in enumerate(names):
        before = analyze_column(name, [row[j] for row in rows])
        after = analyze_column(name, ingested.table.column(name).values)
        assert (before.kind, before.pattern, before.n_distinct) == \
            (after.kind, after.pattern, after.n_distinct)


@given(table=_tables(),
       delimiter=st.sampled_from(DELIMITERS),
       encoding=st.sampled_from(ENCODINGS),
       n_extra=st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_ragged_tail_recovered(table, delimiter, encoding, n_extra):
    """Rows with missing trailing fields pad to None and are counted."""
    names, rows = table
    short_row = rows[-1][: max(1, len(names) - n_extra)]
    truncated = rows[:-1] + [short_row]
    if len(short_row) == len(names):
        return  # nothing truncated at 1 column
    data = _to_csv_bytes(names, truncated, delimiter, encoding)
    ingested = read_delimited_bytes(data, name="t")
    assert ingested.table.n_rows == len(rows)
    assert ingested.n_recovered_rows >= 1
    for j, name in enumerate(names):
        cell = ingested.table.column(name).values[-1]
        if j < len(short_row):
            assert cell == short_row[j]
        else:
            assert cell is None


@given(text=st.text(alphabet=_CELL_ALPHABET, min_size=1, max_size=200),
       encoding=st.sampled_from(ENCODINGS))
@settings(max_examples=120, deadline=None)
def test_detect_encoding_decodes_what_it_detects(text, encoding):
    """Whatever the chain answers, decoding under it cannot raise, and
    BOM'd payloads always round-trip text-identical."""
    data = text.encode(encoding)
    verdict = detect_encoding(data)
    decoded = verdict.decode(data)
    if verdict.had_bom:
        assert decoded == text
    bom_encodings = ("utf-8-sig", "utf-16")
    if encoding in bom_encodings:
        assert verdict.had_bom


@given(table=_tables())
@settings(max_examples=40, deadline=None)
def test_bom_never_leaks_into_header(table):
    """The first column name never starts with a BOM codepoint."""
    names, rows = table
    for encoding in ("utf-8-sig", "utf-16"):
        data = _to_csv_bytes(names, rows, ",", encoding)
        ingested = read_delimited_bytes(data, name="t")
        first = ingested.table.column_names[0]
        assert not first.startswith("﻿")
        assert first == names[0]


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_unicode_cells_survive(encoding):
    """Accented Latin-1 range text survives every supported encoding."""
    names = ["city", "note"]
    rows = [["Zürich", "café"], ["Málaga", "naïve"]]
    data = _to_csv_bytes(names, rows, ",", encoding)
    ingested = read_delimited_bytes(data, name="t")
    assert list(ingested.table.column("city").values) == ["Zürich", "Málaga"]
    assert list(ingested.table.column("note").values) == ["café", "naïve"]
