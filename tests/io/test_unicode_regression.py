"""Unicode regressions across the whole train/save/predict surface.

The ingestion layer guarantees tables contain no surrogates (strict
decodes with a Latin-1 total fallback; SQLite blobs decode with
replacement), but the downstream pipeline must hold up its end: the
character vocabulary, the ``.npz`` round trip and both compute backends
have to treat non-ASCII text -- accents, CJK, astral-plane emoji --
byte-identically.  Plus the latent bug this suite pinned: ``read_csv``
used to leak ``UnicodeDecodeError`` (a ``ValueError``) on non-UTF-8
files, escaping every ``except (OSError, DataError)`` recovery path,
e.g. the ``repro serve`` batch loop.
"""

import numpy as np
import pytest

from repro.errors import CSVFormatError
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.models.serialization import (
    encode_values_for,
    load_detector,
    save_detector,
)
from repro.nn.backend import reset_backend, use_backend
from repro.table import Table, read_csv, write_csv

TINY = ModelConfig(char_embed_dim=6, value_units=5, num_layers=1,
                   attr_embed_dim=3, attr_units=3, length_dense_units=4,
                   head_units=4)

#: Accents (2-byte UTF-8), CJK (3-byte), astral emoji (4-byte,
#: surrogate pair in UTF-16).
UNICODE_ROWS = ["Zürich", "café", "渋谷", "Перо", "🌍ok", "naïve",
                "Ḿünchen", "øre", "東京都", "🎉🎉", "plain", "Ωmega"]


def _unicode_pair():
    clean = Table({
        "city": UNICODE_ROWS,
        "code": [f"C-{i}" for i in range(len(UNICODE_ROWS))],
    })
    dirty_values = list(UNICODE_ROWS)
    dirty_values[0] = "Zurich#"
    dirty_values[3] = "Пepo"  # mixed-script typo
    dirty = Table({
        "city": dirty_values,
        "code": [f"C-{i}" for i in range(len(UNICODE_ROWS))],
    })
    return dirty, clean


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    reset_backend()


def _fit(dirty, clean, seed=0):
    detector = ErrorDetector(n_label_tuples=4, model_config=TINY,
                             training_config=TrainingConfig(epochs=2),
                             seed=seed)
    detector.fit_tables(dirty, clean)
    return detector


def test_non_ascii_vocabulary_round_trips(tmp_path):
    """Train on non-ASCII data, save, load: the restored detector
    scores previously unseen non-ASCII values identically."""
    dirty, clean = _unicode_pair()
    detector = _fit(dirty, clean)
    probe_values = ["Zürich", "🌍ok", "Ωmega", "new🎉"]
    probe_attrs = ["city"] * len(probe_values)
    before = detector.trainer.predict_proba(
        encode_values_for(detector, probe_values, probe_attrs))

    path = tmp_path / "unicode.npz"
    save_detector(detector, path)
    restored = load_detector(path)
    after = restored.trainer.predict_proba(
        encode_values_for(restored, probe_values, probe_attrs))
    np.testing.assert_array_equal(before, after)


def test_backends_agree_on_unicode(tmp_path):
    """fused and graph backends score non-ASCII cells byte-identically
    from the same saved weights.

    (Training is only *allclose* across backends -- gradients reduce in
    different orders -- so the detector is fit once and each backend
    loads the identical ``.npz``; the forward pass must then agree
    bit-for-bit, astral emoji included.)
    """
    dirty, clean = _unicode_pair()
    probe_values = ["渋谷", "Пepo", "🌍ok"]
    probe_attrs = ["city"] * len(probe_values)
    path = tmp_path / "unicode.npz"
    save_detector(_fit(dirty, clean), path)
    results = {}
    for backend in ("fused", "graph"):
        with use_backend(backend):
            restored = load_detector(path)
            results[backend] = restored.trainer.predict_proba(
                encode_values_for(restored, probe_values, probe_attrs))
    np.testing.assert_array_equal(results["fused"], results["graph"])


def test_astral_chars_survive_csv_round_trip(tmp_path):
    table = Table({"t": UNICODE_ROWS})
    path = tmp_path / "u.csv"
    write_csv(table, path)
    back = read_csv(path)
    assert list(back.column("t").values) == UNICODE_ROWS


def test_read_csv_wraps_decode_errors(tmp_path):
    """Non-UTF-8 bytes raise CSVFormatError, not UnicodeDecodeError.

    UnicodeDecodeError is a ValueError: callers guarding file reads
    with ``except (OSError, DataError)`` -- the serve batch loop, the
    benchmark runner -- would crash on a Latin-1 file otherwise.
    """
    path = tmp_path / "latin.csv"
    path.write_bytes(b"id,city\n1,Z\xfcrich\n")
    with pytest.raises(CSVFormatError) as exc_info:
        read_csv(path)
    assert not isinstance(exc_info.value, UnicodeDecodeError)
    assert "utf-8" in str(exc_info.value)


def test_serve_batch_loop_survives_latin1_file(tmp_path, capsys):
    """End to end: a Latin-1 CSV in `repro serve` is reported as a
    failed file (exit 1) instead of crashing the loop."""
    from repro.cli import main

    dirty, clean = _unicode_pair()
    detector = _fit(dirty, clean)
    model = tmp_path / "m.npz"
    save_detector(detector, model)

    good = tmp_path / "good.csv"
    write_csv(dirty, good)
    bad = tmp_path / "bad.csv"
    bad.write_bytes(b"city,code\nZ\xfcrich,C-0\n")

    code = main(["serve", "--model", str(model), str(bad), str(good)])
    assert code == 1  # the bad file failed...
    err = capsys.readouterr().err
    assert "bad.csv: FAILED" in err
    assert "good.csv:" in err  # ...but the good file was still served


def test_ingested_latin1_scores_through_saved_model(tmp_path):
    """The repro.io route: a Latin-1 file ingests (no mojibake for
    genuine Latin-1) and scores through encode_values_for."""
    from repro.io import read_delimited

    dirty, clean = _unicode_pair()
    detector = _fit(dirty, clean)

    path = tmp_path / "latin.csv"
    path.write_bytes("city,code\nZürich,C-0\ncafé,C-1\n".encode("latin-1"))
    ingested = read_delimited(path)
    assert ingested.encoding == "latin-1"
    values = [str(v) for v in ingested.table.column("city").values]
    assert values == ["Zürich", "café"]
    probabilities = detector.trainer.predict_proba(
        encode_values_for(detector, values, ["city"] * len(values)))
    assert probabilities.shape == (2, 2)
    assert np.isfinite(probabilities).all()
