"""Corpus regression suite: adversarial real-world files, golden outcomes.

``tests/io/corpus/`` holds hand-built nasty files -- empty, header-only,
mixed encodings, NUL bytes, single column, duplicate headers, BOM plus
embedded newlines, BOM-less UTF-16, truncated SQLite, binary junk with a
``.csv`` extension.  Each case asserts the exact recovery behaviour, and
a mutation sweep asserts the no-crash floor: any random byte corruption
of any corpus file either ingests or raises :class:`IngestError`, never
anything else.
"""

import os
import random
from pathlib import Path

import pytest

from repro.errors import IngestError
from repro.io import (
    classify_file,
    ingest_path,
    read_delimited,
    read_delimited_bytes,
    read_file,
    read_sqlite,
)

CORPUS = Path(__file__).parent / "corpus"

#: Mutation trials per corpus file.  Tier-1 keeps this small; the
#: nightly `make test-io-fuzz` target raises it by an order of
#: magnitude via the environment.
FUZZ_TRIALS = int(os.environ.get("REPRO_FUZZ_TRIALS", "40"))


def test_corpus_is_present():
    assert len(list(CORPUS.iterdir())) >= 14


def test_empty_file_skipped():
    entry = classify_file(CORPUS / "empty.csv")
    assert entry.kind == "skipped"
    assert "empty" in entry.reason
    with pytest.raises(IngestError):
        read_file(CORPUS / "empty.csv")


def test_header_only_yields_zero_row_table():
    ingested = read_delimited(CORPUS / "header_only.csv")
    assert ingested.table.column_names == ["id", "name", "amount"]
    assert ingested.table.n_rows == 0


def test_mixed_encoding_falls_back_to_latin1():
    """A file mixing UTF-8 and Latin-1 bytes cannot be valid UTF-8; the
    Latin-1 floor decodes every byte (mojibake beats a crash)."""
    ingested = read_delimited(CORPUS / "mixed_encoding.csv")
    assert ingested.encoding == "latin-1"
    assert ingested.n_encoding_fallbacks == 2
    assert ingested.table.n_rows == 2
    # The Latin-1 row decodes exactly; the UTF-8 row survives as mojibake.
    assert ingested.table.column("city").values[1] == "Málaga"


def test_nul_bytes_stripped_and_counted():
    ingested = read_delimited(CORPUS / "nul_bytes.csv")
    assert ingested.n_stripped_nuls == 1
    assert list(ingested.table.column("name").values) == ["alpha", "beta"]


def test_single_column_file():
    ingested = read_delimited(CORPUS / "one_column.csv")
    assert ingested.table.column_names == ["name"]
    assert list(ingested.table.column("name").values) == ["alpha", "beta", "gamma"]


def test_duplicate_and_empty_headers_renamed():
    ingested = read_delimited(CORPUS / "dup_headers.csv")
    assert ingested.table.column_names == ["id", "name", "name_2", "column_4"]
    assert ingested.n_renamed_columns == 2
    assert list(ingested.table.column("name_2").values) == ["b", "e"]


def test_ragged_rows_padded_and_folded():
    ingested = read_delimited(CORPUS / "ragged.csv")
    assert ingested.table.n_rows == 3
    assert ingested.n_recovered_rows == 2
    # Short row pads with None...
    assert ingested.table.column("c").values[0] is None
    # ...overlong row folds its surplus into the last column.
    assert ingested.table.column("c").values[1] == "5,6,7"


def test_utf16_without_bom_detected():
    ingested = read_delimited(CORPUS / "utf16_nobom.csv")
    assert ingested.encoding == "utf-16-le"
    assert list(ingested.table.column("k").values) == ["x", "y"]


def test_bom_with_embedded_quotes_and_newlines():
    ingested = read_delimited(CORPUS / "bom_quotes.csv")
    assert ingested.encoding == "utf-8-sig"
    assert list(ingested.table.column("a").values) == ["line1\nline2"]
    assert list(ingested.table.column("b").values) == ['say "hi"']


def test_semicolon_dialect_with_decimal_commas():
    ingested = read_delimited(CORPUS / "semicolon.csv")
    assert ingested.dialect.delimiter == ";"
    assert list(ingested.table.column("amount").values) == ["3,14", "2,72"]


def test_binary_junk_with_csv_extension_skipped():
    entry = classify_file(CORPUS / "junk.csv")
    assert entry.kind == "skipped"
    assert "binary" in entry.reason


def test_sqlite_two_tables_with_nulls_and_blobs():
    tables = read_sqlite(CORPUS / "two_tables.sqlite")
    names = {t.name for t in tables}
    assert names == {"two_tables:people", "two_tables:blobs"}
    people = next(t for t in tables if t.name.endswith("people"))
    assert list(people.table.column("name").values) == ["ann", None]
    # Blob bytes decode with replacement, never raise.
    blobs = next(t for t in tables if t.name.endswith("blobs"))
    assert isinstance(blobs.table.column("payload").values[0], str)


def test_sqlite_table_selection():
    tables = read_sqlite(CORPUS / "two_tables.sqlite",
                         table_names=["people"])
    assert len(tables) == 1
    with pytest.raises(IngestError):
        read_sqlite(CORPUS / "two_tables.sqlite", table_names=["nope"])


def test_truncated_sqlite_raises_ingest_error():
    with pytest.raises(IngestError):
        read_sqlite(CORPUS / "truncated.sqlite")


def test_pipes_without_trailing_newline():
    ingested = read_delimited(CORPUS / "pipes.txt")
    assert ingested.dialect.delimiter == "|"
    assert ingested.table.n_rows == 1
    assert list(ingested.table.column("c").values) == ["3"]


def test_blank_lines_only_raises():
    with pytest.raises(IngestError):
        read_delimited(CORPUS / "blank_lines.csv")


def test_whole_corpus_ingests_without_crash():
    """The folder sweep: every file either parses or is skipped with a
    reason; the report accounts for all of them."""
    report = ingest_path(CORPUS)
    assert report.stats.files_discovered == len(list(CORPUS.iterdir()))
    assert report.stats.files_parsed + report.stats.files_skipped \
        == report.stats.files_discovered
    assert report.stats.tables_ingested >= 10
    for _, reason in report.skipped:
        assert reason


@pytest.mark.parametrize("source", sorted(
    p.name for p in CORPUS.iterdir() if p.is_file()))
def test_mutation_sweep_never_crashes(tmp_path, source):
    """Fuzz floor: random byte mutations of every corpus file either
    ingest or raise IngestError -- no other exception type escapes."""
    data = (CORPUS / source).read_bytes()
    rng = random.Random(f"fuzz:{source}")
    for trial in range(FUZZ_TRIALS):
        mutated = bytearray(data)
        for _ in range(rng.randint(1, 8)):
            action = rng.randrange(3)
            if action == 0 and mutated:                       # flip
                i = rng.randrange(len(mutated))
                mutated[i] = rng.randrange(256)
            elif action == 1:                                 # insert
                i = rng.randint(0, len(mutated))
                mutated[i:i] = bytes([rng.randrange(256)])
            elif mutated:                                     # delete
                i = rng.randrange(len(mutated))
                del mutated[i]
        target = tmp_path / f"{trial}_{source}"
        target.write_bytes(bytes(mutated))
        try:
            read_file(target)
        except IngestError:
            pass  # rejection with a reason is a valid outcome
        target.unlink()


def test_random_bytes_never_crash(tmp_path):
    """Pure-noise files of assorted sizes: parse or IngestError."""
    rng = random.Random("fuzz:random-bytes")
    for trial, size in enumerate((0, 1, 2, 3, 15, 16, 17, 100, 4096)):
        payload = bytes(rng.randrange(256) for _ in range(size))
        for suffix in (".csv", ".sqlite", ".bin"):
            target = tmp_path / f"noise{trial}{suffix}"
            target.write_bytes(payload)
            try:
                read_file(target)
            except IngestError:
                pass
            target.unlink()
