"""Edge-case integration tests: degenerate inputs the pipeline must survive."""

import numpy as np
import pytest

from repro.dataprep import prepare, split_by_tuple_ids
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.sampling import DiverSet
from repro.table import Table

TINY = ModelConfig(char_embed_dim=4, value_units=5, attr_embed_dim=3,
                   attr_units=3, length_dense_units=4, head_units=6)
FAST = TrainingConfig(epochs=3)


def make_detector(**overrides):
    defaults = dict(architecture="etsb", n_label_tuples=4,
                    model_config=TINY, training_config=FAST, seed=0)
    defaults.update(overrides)
    return ErrorDetector(**defaults)


class TestAllCleanData:
    def test_trains_on_single_class_labels(self):
        """No errors at all: the trainset is all-0 labels; the detector
        must train, predict 'correct' everywhere and report P=R=0 with
        perfect accuracy (no positives exist)."""
        table = Table({
            "a": [f"v{i}" for i in range(20)],
            "b": [f"w{i}" for i in range(20)],
        })
        detector = make_detector(training_config=TrainingConfig(epochs=40))
        detector.fit_tables(table, table)
        result = detector.evaluate()
        assert result.report.accuracy > 0.5
        assert result.report.recall == 0.0  # no positives to recall


class TestAllErrorColumn:
    def test_fully_wrong_column(self):
        dirty = Table({
            "a": [f"v{i}" for i in range(20)],
            "b": ["XXX"] * 20,
        })
        clean = Table({
            "a": [f"v{i}" for i in range(20)],
            "b": [f"w{i}" for i in range(20)],
        })
        detector = make_detector(training_config=TrainingConfig(epochs=25))
        detector.fit_tables(dirty, clean)
        result = detector.evaluate()
        # Every 'XXX' cell is an error and trivially learnable.
        assert result.report.recall > 0.8


class TestEmptyValues:
    def test_column_of_empty_strings(self):
        dirty = Table({
            "a": [""] * 12,
            "b": [f"x{i}" for i in range(12)],
        })
        detector = make_detector()
        detector.fit_tables(dirty, dirty)
        assert detector.evaluate().predictions.shape[0] > 0

    def test_missing_cells_treated_as_empty(self):
        dirty = Table({"a": [None, "x", None, "y", "z", "w"]})
        clean = Table({"a": ["q", "x", "r", "y", "z", "w"]})
        prepared = prepare(dirty, clean)
        values = [r["value_x"] for r in prepared.df.iter_rows()]
        assert values[0] == ""
        labels = [r["label"] for r in prepared.df.iter_rows()]
        assert labels[0] == 1


class TestSingleAttribute:
    def test_one_column_table(self):
        dirty = Table({"only": [f"value {i}" for i in range(15)]})
        detector = make_detector()
        detector.fit_tables(dirty, dirty)
        assert detector.split.train_size == 4  # 4 tuples x 1 attribute


class TestUnicodeContent:
    def test_non_ascii_characters(self):
        dirty = Table({
            "name": ["Zürich", "Genève", "København", "東京", "Zü®ich",
                     "Oslo", "Roma", "Wien"],
        })
        clean = Table({
            "name": ["Zürich", "Genève", "København", "東京", "Zürich",
                     "Oslo", "Roma", "Wien"],
        })
        detector = make_detector()
        detector.fit_tables(dirty, clean)
        result = detector.evaluate()
        assert result.predictions.shape[0] == 4


class TestLongValues:
    def test_values_at_truncation_boundary(self):
        base = "x" * 127
        dirty = Table({"text": [base + c for c in "abcdefgh"]})
        detector = make_detector()
        detector.fit_tables(dirty, dirty)
        assert detector.prepared.max_length == 128


class TestDiverSetDegenerate:
    def test_all_rows_identical(self):
        dirty = Table({"a": ["same"] * 10, "b": ["also"] * 10})
        prepared = prepare(dirty, dirty)
        ids = DiverSet().select(5, prepared, np.random.default_rng(0))
        assert len(set(ids)) == 5

    def test_more_unique_values_than_tuples(self):
        dirty = Table({f"c{j}": [f"{i}-{j}" for i in range(6)]
                       for j in range(10)})
        prepared = prepare(dirty, dirty)
        ids = DiverSet().select(3, prepared, np.random.default_rng(0))
        split = split_by_tuple_ids(prepared, ids)
        assert split.train_size == 30
