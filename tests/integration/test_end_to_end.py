"""Integration tests: the full pipeline on every dataset, CSV round trips,
cross-model comparisons, and the paper's qualitative claims at small scale."""

import numpy as np
import pytest

from repro.dataprep import prepare, split_by_tuple_ids
from repro.datasets import DATASET_NAMES, load
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.sampling import DiverSet
from repro.table import read_csv, write_csv

TINY = ModelConfig(char_embed_dim=6, value_units=8, attr_embed_dim=3,
                   attr_units=3, length_dense_units=6, head_units=8)
FAST = TrainingConfig(epochs=4)


class TestPipelineOnEveryDataset:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_prepare_and_split(self, name):
        pair = load(name, n_rows=60, seed=8)
        prepared = prepare(pair.dirty, pair.clean)
        assert prepared.n_tuples == 60
        ids = DiverSet().select(10, prepared, np.random.default_rng(0))
        split = split_by_tuple_ids(prepared, ids)
        assert split.train_size == 10 * pair.n_attributes

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_label_rate_matches_error_rate(self, name):
        pair = load(name, n_rows=80, seed=8)
        prepared = prepare(pair.dirty, pair.clean)
        labels = [row["label"] for row in prepared.df.iter_rows()]
        assert sum(labels) / len(labels) == pytest.approx(
            pair.measured_error_rate(), abs=1e-9)

    @pytest.mark.parametrize("name", ["beers", "rayyan"])
    def test_detector_trains_on_dataset(self, name):
        pair = load(name, n_rows=50, seed=8)
        detector = ErrorDetector(architecture="etsb", n_label_tuples=8,
                                 model_config=TINY, training_config=FAST)
        detector.fit(pair)
        result = detector.evaluate()
        assert result.predictions.shape[0] == detector.split.test_size


class TestCsvWorkflow:
    def test_full_flow_from_csv_files(self, tmp_path):
        """A user's realistic path: two CSVs in, detections out."""
        pair = load("hospital", n_rows=40, seed=9)
        write_csv(pair.dirty, tmp_path / "dirty.csv")
        write_csv(pair.clean, tmp_path / "clean.csv")

        dirty = read_csv(tmp_path / "dirty.csv")
        clean = read_csv(tmp_path / "clean.csv")
        detector = ErrorDetector(architecture="tsb", n_label_tuples=6,
                                 model_config=TINY, training_config=FAST)
        detector.fit_tables(dirty, clean)
        assert detector.evaluate().predictions.shape[0] > 0


class TestModelComparison:
    def test_both_architectures_same_split(self):
        """Same seed => same sampled tuples for both models (Section 5.2)."""
        pair = load("beers", n_rows=50, seed=3)
        tsb = ErrorDetector(architecture="tsb", n_label_tuples=8,
                            model_config=TINY, training_config=FAST, seed=4)
        etsb = ErrorDetector(architecture="etsb", n_label_tuples=8,
                             model_config=TINY, training_config=FAST, seed=4)
        tsb.fit(pair)
        etsb.fit(pair)
        assert tsb.split.train_tuple_ids == etsb.split.train_tuple_ids

    def test_hospital_easy_flights_hard(self):
        """Section 5.5's qualitative ordering at reduced scale: the
        x-marked Hospital typos are precisely detectable by a character
        model, while Flights' cross-record time disagreements are not --
        hospital gets near-perfect cell accuracy and precision, flights
        clearly lower accuracy.  (The full F1 ordering needs paper-scale
        training and is exercised by the Table 3 benchmark.)"""
        config = ModelConfig(char_embed_dim=16, value_units=24,
                             attr_embed_dim=4, attr_units=4,
                             length_dense_units=16, head_units=16)
        training = TrainingConfig(epochs=40)
        reports = {}
        for name in ("hospital", "flights"):
            pair = load(name, n_rows=100, seed=5)
            detector = ErrorDetector(architecture="etsb", n_label_tuples=15,
                                     model_config=config,
                                     training_config=training, seed=2)
            detector.fit(pair)
            reports[name] = detector.evaluate().report
        assert reports["hospital"].accuracy > 0.95
        assert reports["hospital"].precision > 0.9
        assert reports["flights"].accuracy < reports["hospital"].accuracy
