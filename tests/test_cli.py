"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import load
from repro.table import read_csv, write_csv


@pytest.fixture
def csv_pair(tmp_path):
    pair = load("hospital", n_rows=40, seed=3)
    dirty = tmp_path / "dirty.csv"
    clean = tmp_path / "clean.csv"
    write_csv(pair.dirty, dirty)
    write_csv(pair.clean, clean)
    return dirty, clean


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.rows == 200

    def test_detect_flags(self):
        args = build_parser().parse_args([
            "detect", "--dirty", "d.csv", "--clean", "c.csv",
            "--arch", "tsb", "--epochs", "5", "--cell", "gru"])
        assert args.arch == "tsb"
        assert args.epochs == 5
        assert args.cell == "gru"

    def test_benchmark_validates_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["benchmark", "--dataset", "ghosts"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets", "--rows", "60"]) == 0
        out = capsys.readouterr().out
        assert "beers" in out
        assert "Error Rate" in out

    def test_detect_writes_csv(self, csv_pair, tmp_path, capsys):
        dirty, clean = csv_pair
        out_path = tmp_path / "errors.csv"
        code = main(["detect", "--dirty", str(dirty), "--clean", str(clean),
                     "--epochs", "2", "--tuples", "6",
                     "--out", str(out_path)])
        assert code == 0
        flagged = read_csv(out_path)
        assert flagged.column_names == ["row", "attribute", "value"]

    def test_detect_saves_model(self, csv_pair, tmp_path):
        dirty, clean = csv_pair
        model_path = tmp_path / "model.npz"
        main(["detect", "--dirty", str(dirty), "--clean", str(clean),
              "--epochs", "2", "--tuples", "6", "--save", str(model_path),
              "--out", str(tmp_path / "e.csv")])
        from repro.models.serialization import load_detector
        loaded = load_detector(model_path)
        assert loaded.architecture == "etsb"

    def test_repair_writes_table(self, csv_pair, tmp_path):
        dirty, clean = csv_pair
        out_path = tmp_path / "repaired.csv"
        code = main(["repair", "--dirty", str(dirty), "--clean", str(clean),
                     "--epochs", "2", "--tuples", "6", "--out", str(out_path)])
        assert code == 0
        repaired = read_csv(out_path)
        original = read_csv(dirty)
        assert repaired.shape == original.shape
        assert repaired.column_names == original.column_names

    def test_analyze_command(self, csv_pair, capsys):
        dirty, clean = csv_pair
        code = main(["analyze", "--dirty", str(dirty), "--clean", str(clean),
                     "--epochs", "2", "--tuples", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "attribute" in out

    def test_benchmark_command(self, capsys):
        code = main(["benchmark", "--dataset", "beers", "--rows", "40",
                     "--runs", "1", "--epochs", "2", "--tuples", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "F1 =" in out


class TestPredictCommand:
    def test_predict_with_saved_model(self, csv_pair, tmp_path):
        dirty, clean = csv_pair
        model_path = tmp_path / "model.npz"
        main(["detect", "--dirty", str(dirty), "--clean", str(clean),
              "--epochs", "2", "--tuples", "6", "--save", str(model_path),
              "--out", str(tmp_path / "ignored.csv")])
        out_path = tmp_path / "flagged.csv"
        code = main(["predict", "--model", str(model_path),
                     "--dirty", str(dirty), "--out", str(out_path)])
        assert code == 0
        flagged = read_csv(out_path)
        assert flagged.column_names == ["row", "attribute", "value"]

    def test_predict_no_matching_columns(self, csv_pair, tmp_path):
        dirty, clean = csv_pair
        model_path = tmp_path / "model.npz"
        main(["detect", "--dirty", str(dirty), "--clean", str(clean),
              "--epochs", "2", "--tuples", "6", "--save", str(model_path),
              "--out", str(tmp_path / "ignored.csv")])
        other = tmp_path / "other.csv"
        other.write_text("unrelated\nvalue\n")
        assert main(["predict", "--model", str(model_path),
                     "--dirty", str(other)]) == 1


class TestServingFlags:
    def test_predict_serving_flags(self):
        args = build_parser().parse_args([
            "predict", "--model", "m.npz", "--dirty", "d.csv",
            "--no-dedup", "--cache-size", "128"])
        assert args.no_dedup is True
        assert args.cache_size == 128

    def test_serve_defaults(self):
        args = build_parser().parse_args([
            "serve", "--model", "m.npz", "a.csv", "b.csv"])
        assert args.inputs == ["a.csv", "b.csv"]
        assert args.no_dedup is False
        assert args.cache_size is None

    def test_serve_without_inputs_or_daemon_fails(self, capsys):
        # Inputs are optional at parse time (the daemon takes none),
        # but batch mode without any is a usage error.
        args = build_parser().parse_args(["serve", "--model", "m.npz"])
        assert args.inputs == []
        assert main(["serve", "--model", "m.npz"]) == 2
        assert "batch mode needs at least one input" \
            in capsys.readouterr().err

    def test_daemon_rejects_inputs(self, capsys):
        assert main(["serve", "--model", "m.npz", "--daemon", "a.csv"]) == 2
        assert "--daemon takes no input" in capsys.readouterr().err

    def test_daemon_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "--model", "m.npz", "--daemon", "--port", "7433",
            "--max-batch-rows", "64", "--batch-delay-ms", "2.5",
            "--max-queue-rows", "512"])
        assert args.daemon is True
        assert args.inputs == []
        assert args.host == "127.0.0.1"
        assert args.port == 7433
        assert args.max_batch_rows == 64
        assert args.batch_delay_ms == 2.5
        assert args.max_queue_rows == 512

    def test_daemon_defaults(self):
        args = build_parser().parse_args(["serve", "--model", "m.npz",
                                          "a.csv"])
        assert args.daemon is False
        assert args.port == 0
        assert args.max_batch_rows == 256

    def test_daemon_excludes_no_dedup(self, capsys):
        assert main(["serve", "--model", "m.npz", "--daemon",
                     "--no-dedup"]) == 1
        assert "drop --no-dedup" in capsys.readouterr().err


class TestParallelPrecisionFlags:
    def test_defaults_are_serial_float64(self):
        args = build_parser().parse_args(
            ["serve", "--model", "m.npz", "a.csv"])
        assert args.workers == 0
        assert args.precision == "float64"

    def test_flags_parse_on_predict_and_serve(self):
        for argv in (["predict", "--model", "m.npz", "--dirty", "d.csv"],
                     ["serve", "--model", "m.npz", "a.csv"]):
            args = build_parser().parse_args(
                argv + ["--workers", "2", "--precision", "float32"])
            assert args.workers == 2
            assert args.precision == "float32"

    def test_precision_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["predict", "--model", "m.npz", "--dirty", "d.csv",
                 "--precision", "float16"])

    def test_flags_reach_the_detector(self):
        from repro.cli import _configure_inference
        from repro.models import ErrorDetector

        args = build_parser().parse_args(
            ["predict", "--model", "m.npz", "--dirty", "d.csv",
             "--workers", "3", "--precision", "int8"])
        detector = ErrorDetector(n_label_tuples=6)
        _configure_inference(detector, args)
        assert detector.inference_workers == 3
        assert detector.inference_precision == "int8"

    def test_negative_workers_rejected(self):
        from repro.cli import _configure_inference
        from repro.errors import ConfigurationError
        from repro.models import ErrorDetector

        args = build_parser().parse_args(
            ["predict", "--model", "m.npz", "--dirty", "d.csv",
             "--workers", "-1"])
        with pytest.raises(ConfigurationError):
            _configure_inference(ErrorDetector(n_label_tuples=6), args)

    def test_no_dedup_excludes_reduced_precision(self):
        from repro.cli import _configure_inference
        from repro.errors import ConfigurationError
        from repro.models import ErrorDetector

        args = build_parser().parse_args(
            ["predict", "--model", "m.npz", "--dirty", "d.csv",
             "--no-dedup", "--precision", "float32"])
        with pytest.raises(ConfigurationError):
            _configure_inference(ErrorDetector(n_label_tuples=6), args)


class TestServeCommand:
    @pytest.fixture
    def model_path(self, csv_pair, tmp_path):
        dirty, clean = csv_pair
        path = tmp_path / "model.npz"
        main(["detect", "--dirty", str(dirty), "--clean", str(clean),
              "--epochs", "2", "--tuples", "6", "--save", str(path),
              "--out", str(tmp_path / "ignored.csv")])
        return path

    def test_serve_scores_many_files(self, csv_pair, model_path, tmp_path,
                                     capsys):
        dirty, _ = csv_pair
        out_dir = tmp_path / "scored"
        code = main(["serve", "--model", str(model_path),
                     str(dirty), str(dirty), "--out-dir", str(out_dir)])
        assert code == 0
        outputs = sorted(out_dir.glob("*.errors.csv"))
        assert [p.name for p in outputs] == ["dirty.errors.csv"]
        err = capsys.readouterr().err
        assert "cache hit rate" in err
        # the second pass over the same file is served from cache
        assert "cache hits" in err

    def test_serve_cache_persists_across_files(self, csv_pair, model_path,
                                               tmp_path):
        dirty, _ = csv_pair
        from repro.models.serialization import load_detector
        detector = load_detector(model_path)
        from repro.cli import _score_csv
        first = _score_csv(detector, read_csv(dirty))
        stats_first = detector.inference_stats
        second = _score_csv(detector, read_csv(dirty))
        stats_second = detector.inference_stats
        assert stats_first.cache_misses == stats_first.n_unique
        assert stats_second.cache_hits == stats_second.n_unique
        assert stats_second.n_evaluated == 0
        np.testing.assert_array_equal(
            np.array(first.column("row").values),
            np.array(second.column("row").values))

    def test_serve_all_files_unmatched_fails(self, model_path, tmp_path):
        other = tmp_path / "other.csv"
        other.write_text("unrelated\nvalue\n")
        assert main(["serve", "--model", str(model_path), str(other)]) == 1

    def test_serve_mixed_files_reports_reasons_and_fails(self, csv_pair,
                                                         model_path,
                                                         tmp_path, capsys):
        dirty, _ = csv_pair
        unmatched = tmp_path / "other.csv"
        unmatched.write_text("unrelated\nvalue\n")
        missing = tmp_path / "absent.csv"
        out_dir = tmp_path / "scored"
        code = main(["serve", "--model", str(model_path),
                     str(unmatched), str(dirty), str(missing),
                     "--out-dir", str(out_dir)])
        # ANY failed input turns the exit nonzero, but the good file
        # was still served.
        assert code == 1
        err = capsys.readouterr().err
        assert (out_dir / "dirty.errors.csv").exists()
        assert "served 1/3 files" in err
        assert f"{unmatched}: FAILED" in err
        assert "no column matches the model's attributes" in err
        assert f"{missing}: FAILED" in err
        assert "2 file(s) failed:" in err

    def test_predict_no_dedup_matches(self, csv_pair, model_path, tmp_path):
        dirty, _ = csv_pair
        fast = tmp_path / "fast.csv"
        naive = tmp_path / "naive.csv"
        assert main(["predict", "--model", str(model_path),
                     "--dirty", str(dirty), "--out", str(fast)]) == 0
        assert main(["predict", "--model", str(model_path),
                     "--dirty", str(dirty), "--out", str(naive),
                     "--no-dedup"]) == 0
        assert fast.read_text() == naive.read_text()

    def test_predict_with_workers_matches_serial(self, csv_pair, model_path,
                                                 tmp_path):
        dirty, _ = csv_pair
        serial = tmp_path / "serial.csv"
        workers = tmp_path / "workers.csv"
        assert main(["predict", "--model", str(model_path),
                     "--dirty", str(dirty), "--out", str(serial)]) == 0
        assert main(["predict", "--model", str(model_path),
                     "--dirty", str(dirty), "--out", str(workers),
                     "--workers", "2"]) == 0
        assert workers.read_text() == serial.read_text()

    def test_predict_float32_runs(self, csv_pair, model_path, tmp_path):
        dirty, _ = csv_pair
        out = tmp_path / "fast32.csv"
        assert main(["predict", "--model", str(model_path),
                     "--dirty", str(dirty), "--out", str(out),
                     "--precision", "float32"]) == 0
        assert read_csv(out).column_names == ["row", "attribute", "value"]


class TestTelemetryCli:
    @pytest.fixture
    def model_path(self, csv_pair, tmp_path):
        dirty, clean = csv_pair
        path = tmp_path / "model.npz"
        main(["detect", "--dirty", str(dirty), "--clean", str(clean),
              "--epochs", "2", "--tuples", "6", "--save", str(path),
              "--out", str(tmp_path / "e.csv")])
        return path

    def test_flag_parses_on_workload_commands(self):
        for argv in (["detect", "--dirty", "d", "--clean", "c"],
                     ["predict", "--model", "m", "--dirty", "d"],
                     ["serve", "--model", "m", "x.csv"],
                     ["benchmark", "--dataset", "beers"]):
            args = build_parser().parse_args(argv + ["--telemetry-out",
                                                     "t.jsonl"])
            assert args.telemetry_out == "t.jsonl"

    def test_detect_streams_records_and_snapshot(self, csv_pair, tmp_path,
                                                 capsys):
        import json

        from repro import telemetry

        dirty, clean = csv_pair
        out = tmp_path / "tele.jsonl"
        code = main(["detect", "--dirty", str(dirty), "--clean", str(clean),
                     "--epochs", "2", "--tuples", "6",
                     "--out", str(tmp_path / "e.csv"),
                     "--telemetry-out", str(out)])
        assert code == 0
        assert telemetry.enabled() is False  # session-scoped, restored
        records = [json.loads(line)
                   for line in out.read_text().strip().splitlines()]
        epochs = [r for r in records if r.get("type") == "epoch"]
        assert len(epochs) == 2
        assert records[-1]["type"] == "snapshot"
        assert records[-1]["metrics"]["counters"]["train.epochs"] == 2
        assert "telemetry:" in capsys.readouterr().err

    def test_predict_telemetry_matches_stderr_stats(self, csv_pair,
                                                    model_path, tmp_path,
                                                    capsys):
        import json

        dirty, _ = csv_pair
        out = tmp_path / "predict.jsonl"
        assert main(["predict", "--model", str(model_path),
                     "--dirty", str(dirty), "--out", str(tmp_path / "p.csv"),
                     "--telemetry-out", str(out)]) == 0
        records = [json.loads(line)
                   for line in out.read_text().strip().splitlines()]
        inference = [r for r in records if r.get("type") == "inference"]
        assert len(inference) == 1
        assert inference[0]["n_rows"] > 0
        counters = records[-1]["metrics"]["counters"]
        assert counters["inference.rows"] == inference[0]["n_rows"]

    def test_summarize_round_trip(self, csv_pair, tmp_path, capsys):
        dirty, clean = csv_pair
        out = tmp_path / "tele.jsonl"
        main(["detect", "--dirty", str(dirty), "--clean", str(clean),
              "--epochs", "2", "--tuples", "6",
              "--out", str(tmp_path / "e.csv"),
              "--telemetry-out", str(out)])
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(out)]) == 0
        text = capsys.readouterr().out
        assert "records:" in text
        assert "2 epochs" in text

    def test_summarize_missing_file_fails(self, tmp_path, capsys):
        assert main(["telemetry", "summarize",
                     str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err
