"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import load
from repro.table import read_csv, write_csv


@pytest.fixture
def csv_pair(tmp_path):
    pair = load("hospital", n_rows=40, seed=3)
    dirty = tmp_path / "dirty.csv"
    clean = tmp_path / "clean.csv"
    write_csv(pair.dirty, dirty)
    write_csv(pair.clean, clean)
    return dirty, clean


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.rows == 200

    def test_detect_flags(self):
        args = build_parser().parse_args([
            "detect", "--dirty", "d.csv", "--clean", "c.csv",
            "--arch", "tsb", "--epochs", "5", "--cell", "gru"])
        assert args.arch == "tsb"
        assert args.epochs == 5
        assert args.cell == "gru"

    def test_benchmark_validates_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["benchmark", "--dataset", "ghosts"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets", "--rows", "60"]) == 0
        out = capsys.readouterr().out
        assert "beers" in out
        assert "Error Rate" in out

    def test_detect_writes_csv(self, csv_pair, tmp_path, capsys):
        dirty, clean = csv_pair
        out_path = tmp_path / "errors.csv"
        code = main(["detect", "--dirty", str(dirty), "--clean", str(clean),
                     "--epochs", "2", "--tuples", "6",
                     "--out", str(out_path)])
        assert code == 0
        flagged = read_csv(out_path)
        assert flagged.column_names == ["row", "attribute", "value"]

    def test_detect_saves_model(self, csv_pair, tmp_path):
        dirty, clean = csv_pair
        model_path = tmp_path / "model.npz"
        main(["detect", "--dirty", str(dirty), "--clean", str(clean),
              "--epochs", "2", "--tuples", "6", "--save", str(model_path),
              "--out", str(tmp_path / "e.csv")])
        from repro.models.serialization import load_detector
        loaded = load_detector(model_path)
        assert loaded.architecture == "etsb"

    def test_repair_writes_table(self, csv_pair, tmp_path):
        dirty, clean = csv_pair
        out_path = tmp_path / "repaired.csv"
        code = main(["repair", "--dirty", str(dirty), "--clean", str(clean),
                     "--epochs", "2", "--tuples", "6", "--out", str(out_path)])
        assert code == 0
        repaired = read_csv(out_path)
        original = read_csv(dirty)
        assert repaired.shape == original.shape
        assert repaired.column_names == original.column_names

    def test_analyze_command(self, csv_pair, capsys):
        dirty, clean = csv_pair
        code = main(["analyze", "--dirty", str(dirty), "--clean", str(clean),
                     "--epochs", "2", "--tuples", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "attribute" in out

    def test_benchmark_command(self, capsys):
        code = main(["benchmark", "--dataset", "beers", "--rows", "40",
                     "--runs", "1", "--epochs", "2", "--tuples", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "F1 =" in out


class TestPredictCommand:
    def test_predict_with_saved_model(self, csv_pair, tmp_path):
        dirty, clean = csv_pair
        model_path = tmp_path / "model.npz"
        main(["detect", "--dirty", str(dirty), "--clean", str(clean),
              "--epochs", "2", "--tuples", "6", "--save", str(model_path),
              "--out", str(tmp_path / "ignored.csv")])
        out_path = tmp_path / "flagged.csv"
        code = main(["predict", "--model", str(model_path),
                     "--dirty", str(dirty), "--out", str(out_path)])
        assert code == 0
        flagged = read_csv(out_path)
        assert flagged.column_names == ["row", "attribute", "value"]

    def test_predict_no_matching_columns(self, csv_pair, tmp_path):
        dirty, clean = csv_pair
        model_path = tmp_path / "model.npz"
        main(["detect", "--dirty", str(dirty), "--clean", str(clean),
              "--epochs", "2", "--tuples", "6", "--save", str(model_path),
              "--out", str(tmp_path / "ignored.csv")])
        other = tmp_path / "other.csv"
        other.write_text("unrelated\nvalue\n")
        assert main(["predict", "--model", str(model_path),
                     "--dirty", str(other)]) == 1
