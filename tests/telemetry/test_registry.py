"""Tests for the metric primitives and the process-wide registry."""

import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    merge_snapshots,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("n")
        assert c.snapshot() == 0
        c.inc()
        c.inc(4)
        assert c.snapshot() == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            Counter("n").inc(-1)


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("loss")
        g.set(0.7)
        g.set(0.5)
        assert g.snapshot() == 0.5


class TestHistogram:
    def test_bucket_placement_is_inclusive_upper_edge(self):
        h = Histogram("lat", edges=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            h.observe(value)
        # <=1.0 -> bucket 0, <=2.0 -> bucket 1, above -> overflow.
        assert h.counts == [2, 2, 1]
        assert h.count == 5
        assert h.min == 0.5 and h.max == 99.0
        assert h.mean == pytest.approx((0.5 + 1.0 + 1.5 + 2.0 + 99.0) / 5)

    def test_rejects_bad_edges(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", edges=())
        with pytest.raises(ConfigurationError):
            Histogram("h", edges=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", edges=(1.0, 1.0))


class TestTimer:
    def test_observe_and_context_manager(self):
        t = Timer("t")
        t.observe(0.25)
        with t.time():
            pass
        assert t.count == 2
        assert t.total >= 0.25
        assert t.mean == pytest.approx(t.total / 2)


class TestRegistry:
    def test_create_or_get_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.timer("b") is reg.timer("b")

    def test_name_is_unique_across_kinds(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError, match="already used"):
            reg.gauge("x")
        with pytest.raises(ConfigurationError, match="already used"):
            reg.histogram("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        reg.timer("t").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        assert snap["timers"]["t"]["total"] == 2.0

    def test_reset_drops_metrics_but_keeps_sinks(self):
        reg = MetricsRegistry()
        sink = telemetry.MemorySink()
        reg.add_sink(sink)
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot()["counters"] == {}
        assert reg.sinks == (sink,)


class TestMerge:
    def _populated(self, counter, gauge, lat):
        reg = MetricsRegistry()
        reg.counter("c").inc(counter)
        reg.gauge("g").set(gauge)
        reg.histogram("h", edges=(1.0, 2.0)).observe(lat)
        reg.timer("t").observe(lat)
        return reg.snapshot()

    def test_counters_histograms_timers_add_gauges_overwrite(self):
        merged = merge_snapshots([
            self._populated(2, 0.9, 0.5),
            self._populated(3, 0.4, 1.5),
        ])
        assert merged["counters"]["c"] == 5
        assert merged["gauges"]["g"] == 0.4
        assert merged["histograms"]["h"]["counts"] == [1, 1, 0]
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["min"] == 0.5
        assert merged["histograms"]["h"]["max"] == 1.5
        assert merged["timers"]["t"]["count"] == 2
        assert merged["timers"]["t"]["total"] == pytest.approx(2.0)

    def test_merge_is_schedule_independent(self):
        parts = [self._populated(i, 0.1 * i, 0.3 * i) for i in range(1, 4)]
        forward = merge_snapshots(parts)
        # Gauges are last-write-wins, so only compare the additive kinds.
        backward = merge_snapshots(list(reversed(parts)))
        assert forward["counters"] == backward["counters"]
        assert forward["histograms"]["h"]["counts"] == \
            backward["histograms"]["h"]["counts"]
        # Totals are float sums, so ordering only matters up to rounding.
        assert forward["histograms"]["h"]["total"] == \
            pytest.approx(backward["histograms"]["h"]["total"])
        assert forward["timers"]["t"]["count"] == \
            backward["timers"]["t"]["count"]

    def test_mismatched_histogram_edges_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h", edges=(2.0,)).observe(0.5)
        with pytest.raises(ConfigurationError, match="edges differ"):
            reg.merge_snapshot(other.snapshot())


class TestEnablement:
    @pytest.fixture(autouse=True)
    def _restore(self):
        yield
        telemetry.reset_enabled()

    def test_off_by_default_without_env(self, monkeypatch):
        monkeypatch.delenv(telemetry.TELEMETRY_ENV_VAR, raising=False)
        telemetry.reset_enabled()
        assert telemetry.enabled() is False

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("on", True),
        ("0", False), ("false", False), ("off", False),
        ("no", False), ("", False),
    ])
    def test_env_parsing(self, monkeypatch, raw, expected):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV_VAR, raw)
        telemetry.reset_enabled()
        assert telemetry.enabled() is expected

    def test_set_enabled_overrides_env(self, monkeypatch):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV_VAR, "1")
        telemetry.set_enabled(False)
        assert telemetry.enabled() is False

    def test_use_telemetry_restores_flag_and_registry(self):
        telemetry.set_enabled(False)
        outer = telemetry.get_registry()
        fresh = MetricsRegistry()
        with telemetry.use_telemetry(fresh):
            assert telemetry.enabled() is True
            assert telemetry.get_registry() is fresh
        assert telemetry.enabled() is False
        assert telemetry.get_registry() is outer
