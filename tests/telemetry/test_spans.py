"""Tests for the nestable tracing spans."""

import pytest

from repro import telemetry
from repro.telemetry import MemorySink, MetricsRegistry, current_span, span


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.add_sink(MemorySink())
    with telemetry.use_telemetry(reg):
        yield reg


def _records(registry):
    return registry.sinks[0].records


class TestSpan:
    def test_emits_record_and_timer(self, registry):
        with span("work") as s:
            s.add(items=3)
        [record] = _records(registry)
        assert record["type"] == "span"
        assert record["name"] == "work"
        assert record["parent"] is None
        assert record["depth"] == 0
        assert record["items"] == 3
        assert record["wall_s"] >= 0.0
        assert record["cpu_s"] >= 0.0
        timer = registry.timers["span.work"]
        assert timer.count == 1
        assert timer.last == record["wall_s"]

    def test_nesting_links_parent_and_depth(self, registry):
        with span("outer"):
            with span("inner"):
                pass
        inner, outer = _records(registry)  # inner exits (and emits) first
        assert inner["name"] == "inner"
        assert inner["parent"] == "outer"
        assert inner["depth"] == 1
        assert outer["name"] == "outer"
        assert outer["parent"] is None

    def test_current_span_tracks_innermost(self, registry):
        assert current_span() is None
        with span("outer"):
            with span("inner"):
                assert current_span().name == "inner"
            assert current_span().name == "outer"
        assert current_span() is None

    def test_keyword_fields_at_creation(self, registry):
        with span("fit", epochs=7):
            pass
        assert _records(registry)[0]["epochs"] == 7

    def test_stack_unwinds_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with span("broken"):
                raise RuntimeError("boom")
        assert current_span() is None
        assert _records(registry)[0]["name"] == "broken"


class TestDisabled:
    def test_returns_shared_null_span(self):
        telemetry.set_enabled(False)
        try:
            first = span("anything")
            second = span("other")
            assert first is second
            with first as s:
                s.add(ignored=True)  # must not raise
            assert current_span() is None
        finally:
            telemetry.reset_enabled()

    def test_no_records_or_metrics_when_disabled(self):
        reg = MetricsRegistry()
        reg.add_sink(MemorySink())
        telemetry.set_enabled(False)
        try:
            with telemetry.use_registry(reg):
                with span("quiet"):
                    pass
        finally:
            telemetry.reset_enabled()
        assert _records(reg) == []
        assert reg.timers == {}
