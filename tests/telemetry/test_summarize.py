"""Tests for telemetry summarization, especially histogram percentiles."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    percentile_from_buckets,
    render_summary,
    summarize_histogram,
    summarize_jsonl,
    summarize_records,
)

EDGES = [0.001, 0.01, 0.1, 1.0]


class TestPercentileFromBuckets:
    def test_empty_histogram_is_none(self):
        assert percentile_from_buckets(EDGES, [0, 0, 0, 0, 0], 0.5) is None

    def test_q_out_of_range_is_none(self):
        counts = [1, 0, 0, 0, 0]
        assert percentile_from_buckets(EDGES, counts, 0.0) is None
        assert percentile_from_buckets(EDGES, counts, 1.5) is None

    def test_counts_length_validated(self):
        with pytest.raises(ConfigurationError):
            percentile_from_buckets(EDGES, [1, 2, 3], 0.5)

    def test_interpolates_inside_a_bucket(self):
        # 100 observations, all in (0.01, 0.1]: the median sits halfway
        # through that bucket under the linear-interpolation model.
        counts = [0, 0, 100, 0, 0]
        assert percentile_from_buckets(EDGES, counts, 0.5) == pytest.approx(
            0.01 + (0.1 - 0.01) * 0.5)

    def test_first_bucket_floors_at_zero(self):
        counts = [100, 0, 0, 0, 0]
        assert percentile_from_buckets(EDGES, counts, 0.5) == pytest.approx(
            0.0005)

    def test_spread_across_buckets(self):
        # 90 in the first bucket, 10 in the second: p50 interpolates in
        # the first, p95 lands halfway through the second's ten.
        counts = [90, 10, 0, 0, 0]
        p50 = percentile_from_buckets(EDGES, counts, 0.5)
        p95 = percentile_from_buckets(EDGES, counts, 0.95)
        assert p50 == pytest.approx(0.001 * 50 / 90)
        assert p95 == pytest.approx(0.001 + (0.01 - 0.001) * 0.5)

    def test_overflow_is_capped_at_observed_max(self):
        counts = [0, 0, 0, 0, 5]
        assert percentile_from_buckets(EDGES, counts, 0.5,
                                       maximum=2.5) == 2.5
        assert percentile_from_buckets(EDGES, counts, 0.5) == EDGES[-1]

    def test_p100_is_reachable(self):
        counts = [3, 0, 0, 0, 0]
        assert percentile_from_buckets(EDGES, counts, 1.0) == pytest.approx(
            0.001)


class TestSummarizeHistogram:
    def test_summary_fields(self):
        state = {"count": 100, "total": 5.0, "min": 0.002, "max": 0.09,
                 "edges": EDGES, "counts": [0, 0, 100, 0, 0]}
        summary = summarize_histogram(state)
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(0.05)
        assert summary["min"] == 0.002
        assert summary["max"] == 0.09
        assert set(summary) >= {"p50", "p95", "p99"}
        assert summary["p50"] == pytest.approx(0.055)

    def test_empty_histogram(self):
        state = {"count": 0, "total": 0.0, "min": None, "max": None,
                 "edges": EDGES, "counts": [0, 0, 0, 0, 0]}
        summary = summarize_histogram(state)
        assert summary["mean"] is None
        assert summary["p99"] is None


def snapshot_record(**histograms):
    return {"type": "snapshot",
            "metrics": {"counters": {}, "gauges": {},
                        "histograms": histograms}}


LATENCY = {"count": 10, "total": 0.2, "min": 0.001, "max": 0.08,
           "edges": EDGES, "counts": [2, 3, 5, 0, 0]}


class TestSnapshotHistograms:
    def test_snapshot_histograms_summarized(self):
        summary = summarize_records([snapshot_record(**{
            "serve.latency": LATENCY,
            "empty.histogram": {"count": 0, "total": 0.0, "min": None,
                                "max": None, "edges": EDGES,
                                "counts": [0, 0, 0, 0, 0]},
        })])
        assert list(summary["histograms"]) == ["serve.latency"]
        entry = summary["histograms"]["serve.latency"]
        assert entry["count"] == 10
        assert entry["p50"] is not None

    def test_last_snapshot_wins(self):
        first = snapshot_record(**{"serve.latency": LATENCY})
        second = snapshot_record(**{
            "serve.latency": {**LATENCY, "count": 99, "total": 1.0,
                              "counts": [99, 0, 0, 0, 0]}})
        summary = summarize_records([first, second])
        assert summary["histograms"]["serve.latency"]["count"] == 99

    def test_render_includes_percentiles(self):
        text = render_summary(summarize_records(
            [snapshot_record(**{"serve.latency": LATENCY})]))
        assert "histograms (count / p50 / p95 / p99 / max):" in text
        assert "serve.latency" in text

    def test_no_histograms_renders_without_section(self):
        text = render_summary(summarize_records([{"type": "span",
                                                  "name": "x",
                                                  "wall_s": 1.0}]))
        assert "histograms" not in text

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(snapshot_record(**{"serve.latency": LATENCY})) + "\n")
        text = summarize_jsonl(path)
        assert "serve.latency" in text

    def test_real_histogram_snapshot_round_trips(self):
        # End to end through the real metrics registry: observe known
        # values, snapshot, summarize.
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        histogram = registry.histogram("serve.latency")
        for value in (0.002, 0.003, 0.02, 0.05, 0.5):
            histogram.observe(value)
        snapshot = {"type": "snapshot", "metrics": registry.snapshot()}
        summary = summarize_records([snapshot])
        entry = summary["histograms"]["serve.latency"]
        assert entry["count"] == 5
        assert entry["max"] == 0.5
        assert 0.0 < entry["p50"] <= entry["p95"] <= entry["p99"] <= 0.5
