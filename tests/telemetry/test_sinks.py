"""Tests for the record sinks and the JSON-lines summarizer."""

import io
import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    StderrSummarySink,
    read_records,
    render_summary,
    summarize_jsonl,
    summarize_records,
)


class TestMemorySink:
    def test_collects_and_filters_by_type(self):
        sink = MemorySink()
        sink.emit({"type": "epoch", "loss": 0.5})
        sink.emit({"type": "span", "name": "fit"})
        assert len(sink.records) == 2
        assert sink.of_type("epoch") == [{"type": "epoch", "loss": 0.5}]

    def test_emit_copies_the_record(self):
        sink = MemorySink()
        record = {"type": "epoch"}
        sink.emit(record)
        record["mutated"] = True
        assert "mutated" not in sink.records[0]


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out" / "tele.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "epoch", "loss": 0.25})
        sink.emit({"type": "inference", "n_rows": 10})
        sink.close()
        assert sink.n_records == 2
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line) for line in lines] == [
            {"type": "epoch", "loss": 0.25},
            {"type": "inference", "n_rows": 10},
        ]

    def test_lazy_open_writes_nothing_without_records(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert not path.exists()

    def test_numpy_values_serialise(self, tmp_path):
        path = tmp_path / "np.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "x", "i": np.int64(3), "f": np.float64(0.5),
                   "a": np.arange(2)})
        sink.close()
        assert json.loads(path.read_text()) == {"type": "x", "i": 3,
                                                "f": 0.5, "a": [0, 1]}

    def test_flushes_per_line(self, tmp_path):
        path = tmp_path / "live.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "epoch"})
        # Readable before close -- the crash-mid-run guarantee.
        assert json.loads(path.read_text()) == {"type": "epoch"}
        sink.close()

    def test_registry_emit_reaches_file(self, tmp_path):
        path = tmp_path / "reg.jsonl"
        registry = MetricsRegistry()
        sink = JsonlSink(path)
        registry.add_sink(sink)
        registry.emit({"type": "custom", "k": 1})
        sink.close()
        assert read_records(path) == [{"type": "custom", "k": 1}]


class TestStderrSummarySink:
    def test_counts_types_and_span_wall(self):
        stream = io.StringIO()
        sink = StderrSummarySink(stream=stream)
        sink.emit({"type": "epoch"})
        sink.emit({"type": "span", "name": "fit", "wall_s": 0.5})
        sink.emit({"type": "span", "name": "fit", "wall_s": 0.25})
        sink.close()
        text = stream.getvalue()
        assert "3 records" in text
        assert "epoch" in text and "span" in text
        assert "fit" in text and "0.750s" in text


class TestSummarize:
    RECORDS = [
        {"type": "span", "name": "train.fit", "wall_s": 1.0, "cpu_s": 0.9},
        {"type": "epoch", "epoch": 0, "loss": 0.9, "wall_s": 0.5},
        {"type": "epoch", "epoch": 1, "loss": 0.4, "wall_s": 0.5},
        {"type": "inference", "n_rows": 100, "n_unique": 40,
         "cache_hits": 10, "cache_misses": 30, "n_evaluated": 30},
        {"type": "inference", "n_rows": 100, "n_unique": 40,
         "cache_hits": 40, "cache_misses": 0, "n_evaluated": 0},
    ]

    def test_aggregates(self):
        summary = summarize_records(self.RECORDS)
        assert summary["n_records"] == 5
        assert summary["record_counts"] == {"span": 1, "epoch": 2,
                                            "inference": 2}
        assert summary["spans"]["train.fit"]["wall_s"] == 1.0
        assert summary["epochs"]["count"] == 2
        assert summary["epochs"]["first_loss"] == 0.9
        assert summary["epochs"]["last_loss"] == 0.4
        assert summary["epochs"]["min_loss"] == 0.4
        inference = summary["inference"]
        assert inference["calls"] == 2
        assert inference["n_rows"] == 200
        assert inference["n_unique"] == 80
        assert inference["unique_ratio"] == pytest.approx(0.4)
        assert inference["hit_rate"] == pytest.approx(50 / 80)

    def test_render_is_stable_text(self):
        text = render_summary(summarize_records(self.RECORDS))
        assert "records: 5" in text
        assert "train.fit" in text
        assert "2 epochs" in text
        assert "30 network forwards" in text

    def test_summarize_jsonl_end_to_end(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in self.RECORDS))
        assert "records: 5" in summarize_jsonl(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no telemetry file"):
            read_records(tmp_path / "absent.jsonl")

    def test_bad_json_points_at_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "epoch"}\nnot json\n')
        with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
            read_records(path)

    def test_empty_records(self):
        summary = summarize_records([])
        assert summary["n_records"] == 0
        assert summary["epochs"]["first_loss"] is None
        assert summary["inference"]["unique_ratio"] is None
        assert render_summary(summary).startswith("records: 0")
