"""Acceptance tests: telemetry wired through the real hot paths.

Trains a tiny detector with a JSON-lines sink attached and asserts the
emitted records against the ground truth the library reports through its
return values (:class:`DetectionResult`, :class:`InferenceStats`) -- the
telemetry stream must agree with the numbers the code computes anyway.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.datasets import load
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.telemetry import JsonlSink, MemorySink, MetricsRegistry

TINY = ModelConfig(char_embed_dim=6, value_units=5, num_layers=1,
                   attr_embed_dim=3, attr_units=3, length_dense_units=4,
                   head_units=4)
EPOCHS = 2


def _tiny_detector(seed: int = 0) -> ErrorDetector:
    return ErrorDetector(n_label_tuples=6, model_config=TINY,
                         training_config=TrainingConfig(epochs=EPOCHS),
                         seed=seed)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One instrumented train+evaluate cycle: (result, records, snapshot)."""
    path = tmp_path_factory.mktemp("tele") / "run.jsonl"
    registry = MetricsRegistry()
    sink = JsonlSink(path)
    registry.add_sink(sink)
    pair = load("hospital", n_rows=40, seed=4)
    with telemetry.use_telemetry(registry):
        detector = _tiny_detector()
        detector.fit(pair)
        result = detector.evaluate()
    sink.close()
    records = [json.loads(line)
               for line in path.read_text().strip().splitlines()]
    return result, records, registry.snapshot()


def _of_type(records, record_type):
    return [r for r in records if r.get("type") == record_type]


class TestTrainingRecords:
    def test_one_epoch_record_per_epoch(self, traced_run):
        _, records, snapshot = traced_run
        epochs = _of_type(records, "epoch")
        assert len(epochs) == EPOCHS
        assert [r["epoch"] for r in epochs] == list(range(EPOCHS))
        assert snapshot["counters"]["train.epochs"] == EPOCHS

    def test_epoch_records_carry_plausible_training_signal(self, traced_run):
        _, records, _ = traced_run
        for record in _of_type(records, "epoch"):
            assert record["loss"] > 0.0
            assert record["grad_norm"] is None or record["grad_norm"] >= 0.0
            assert record["n_batches"] >= 1
            assert 0.0 < record["batch_fill"] <= 1.0
            assert 0.0 < record["width_ratio"] <= 1.0
            assert record["wall_s"] > 0.0
            assert 0.0 <= record["backward_s"] <= record["wall_s"]

    def test_loss_gauge_matches_last_epoch_record(self, traced_run):
        _, records, snapshot = traced_run
        last = _of_type(records, "epoch")[-1]
        assert snapshot["gauges"]["train.loss"] == pytest.approx(last["loss"])

    def test_fit_span_encloses_the_epochs(self, traced_run):
        _, records, snapshot = traced_run
        [fit_span] = [r for r in _of_type(records, "span")
                      if r["name"] == "train.fit"]
        assert fit_span["epochs"] == EPOCHS
        epoch_wall = sum(r["wall_s"] for r in _of_type(records, "epoch"))
        assert fit_span["wall_s"] >= epoch_wall
        assert snapshot["timers"]["span.train.fit"]["count"] == 1

    def test_kernel_timers_recorded(self, traced_run):
        _, _, snapshot = traced_run
        timers = snapshot["timers"]
        assert timers["kernel.RNNLevelFunction.forward"]["count"] > 0
        assert timers["kernel.RNNLevelFunction.backward"]["count"] > 0
        assert timers["kernel.DenseSoftmaxBCEFunction.forward"]["count"] > 0


class TestInferenceRecords:
    def test_inference_record_matches_inference_stats(self, traced_run):
        result, records, _ = traced_run
        stats = result.inference
        assert stats is not None
        last = _of_type(records, "inference")[-1]
        assert last == {"type": "inference", "precision": "float64",
                        "workers": 0, **stats.as_dict()}

    def test_counters_match_inference_stats(self, traced_run):
        result, _, snapshot = traced_run
        counters = snapshot["counters"]
        stats = result.inference
        # The evaluation pass is the only prediction in this session.
        assert counters["inference.calls"] == 1
        assert counters["inference.rows"] == stats.n_rows
        assert counters["inference.unique"] == stats.n_unique
        assert counters["inference.cache_hits"] == stats.cache_hits
        assert counters["inference.cache_misses"] == stats.cache_misses
        assert counters["inference.evaluated"] == stats.n_evaluated

    def test_cache_lookup_counters_balance(self, traced_run):
        _, _, snapshot = traced_run
        counters = snapshot["counters"]
        assert counters["cache.lookups"] == \
            counters.get("cache.hits", 0) + counters["cache.misses"]

    def test_forward_latency_histogram_covers_every_chunk(self, traced_run):
        result, _, snapshot = traced_run
        hist = snapshot["histograms"]["inference.forward_seconds"]
        # One observation per representative chunk; batch_size 256 >= the
        # tiny test split, so exactly one chunk was evaluated.
        assert hist["count"] == 1
        assert sum(hist["counts"]) == hist["count"]
        assert hist["min"] > 0.0

    def test_evaluation_record_matches_detection_result(self, traced_run):
        result, records, _ = traced_run
        [record] = _of_type(records, "evaluation")
        assert record["n_cells"] == result.predictions.shape[0]
        assert record["precision"] == pytest.approx(
            round(result.report.precision, 4))
        assert record["recall"] == pytest.approx(
            round(result.report.recall, 4))
        assert record["f1"] == pytest.approx(round(result.report.f1, 4))
        assert record["inference"] == result.inference.as_dict()


class TestParallelPlaneMetrics:
    """The kernel work plane reports pool activity through the registry."""

    @pytest.fixture()
    def plane_snapshot(self):
        from repro.autograd import Tensor
        from repro.nn.kernels import lstm_level
        from repro.nn.parallel import use_workers

        rng = np.random.default_rng(7)
        batch, n_steps, units = 32, 24, 5
        lengths = np.full(batch, 2)
        lengths[24:] = n_steps  # skewed: a short run plus a long tail
        mask = np.arange(n_steps)[None, :] < lengths[:, None]
        x = Tensor(rng.normal(size=(batch, n_steps, 3)), requires_grad=True)
        w_x = Tensor(0.5 * rng.normal(size=(3, 4 * units)),
                     requires_grad=True)
        w_h = Tensor(0.5 * rng.normal(size=(units, 4 * units)),
                     requires_grad=True)
        b_h = Tensor(0.1 * rng.normal(size=(4 * units,)), requires_grad=True)
        registry = MetricsRegistry()
        with telemetry.use_telemetry(registry), use_workers(2):
            out = lstm_level(x, w_x, w_h, b_h, mask=mask)
            (out * out).sum().backward()
        return registry.snapshot()

    def test_tasks_dispatched_counted(self, plane_snapshot):
        # At least one forward and one backward fan-out of >= 2 groups.
        assert plane_snapshot["counters"]["parallel.tasks_dispatched"] >= 4

    def test_worker_timers_cover_every_task(self, plane_snapshot):
        dispatched = plane_snapshot["counters"]["parallel.tasks_dispatched"]
        wall = plane_snapshot["timers"]["parallel.worker_wall_seconds"]
        cpu = plane_snapshot["timers"]["parallel.worker_cpu_seconds"]
        assert wall["count"] == dispatched
        assert cpu["count"] == dispatched
        assert wall["total"] > 0.0


class TestSharedMemoryMetrics:
    """Weight broadcasts report segment traffic through the registry."""

    def test_publish_counts_broadcasts_and_bytes(self):
        from repro.models.etsb_rnn import ETSBRNN
        from repro.nn.parallel import SharedWeights

        model = ETSBRNN(12, 4, TINY, np.random.default_rng(3))
        registry = MetricsRegistry()
        with telemetry.use_telemetry(registry):
            with SharedWeights(model) as shared:
                manifest = shared.publish()
                shared.publish()  # same version: no new broadcast
        counters = registry.snapshot()["counters"]
        assert counters["parallel.shm_broadcasts"] == 1
        assert counters["parallel.shm_broadcast_bytes"] == \
            manifest["n_bytes"]


class TestPrecisionMetrics:
    """Inference precision and worker usage reach counters and records."""

    @pytest.fixture()
    def engine_parts(self):
        from repro.inference import InferenceEngine, PredictionCache
        from repro.models.etsb_rnn import ETSBRNN

        rng = np.random.default_rng(5)
        model = ETSBRNN(12, 4, TINY, rng)
        model.eval()
        n_rows, max_len = 12, 8
        lengths = rng.integers(1, max_len + 1, size=n_rows)
        values = np.zeros((n_rows, max_len), dtype=np.int64)
        for i, ell in enumerate(lengths):
            values[i, :ell] = rng.integers(1, 12, size=ell)
        features = {
            "values": values,
            "attributes": rng.integers(1, 4, size=n_rows),
            "length_norm": (lengths / max_len).reshape(-1, 1),
        }
        engine = InferenceEngine(model, cache=PredictionCache())
        return engine, features

    def test_precision_counter_and_weight_casts(self, engine_parts):
        engine, features = engine_parts
        registry = MetricsRegistry()
        sink = MemorySink()
        registry.add_sink(sink)
        with telemetry.use_telemetry(registry):
            engine.predict_proba(features, precision="float32")
            engine.predict_proba(features, precision="float32")
        counters = registry.snapshot()["counters"]
        assert counters["inference.precision.float32"] == 2
        # The float32 weight cast is cached across calls on one version.
        assert counters["inference.precision.weight_casts"] == 1
        last = [r for r in sink.records if r.get("type") == "inference"][-1]
        assert last["precision"] == "float32"

    def test_parallel_calls_counter_and_record(self, engine_parts):
        engine, features = engine_parts
        registry = MetricsRegistry()
        sink = MemorySink()
        registry.add_sink(sink)
        with telemetry.use_telemetry(registry):
            engine.predict_proba(features, workers=2)
        counters = registry.snapshot()["counters"]
        assert counters["inference.parallel_calls"] == 1
        assert counters["inference.precision.float64"] == 1
        [record] = [r for r in sink.records if r.get("type") == "inference"]
        assert record["workers"] == 2


class TestDisabledByDefault:
    def test_no_records_and_no_metrics_without_the_flag(self):
        registry = MetricsRegistry()
        sink = MemorySink()
        registry.add_sink(sink)
        telemetry.set_enabled(False)
        try:
            with telemetry.use_registry(registry):
                pair = load("hospital", n_rows=30, seed=4)
                detector = _tiny_detector()
                detector.fit(pair)
                detector.evaluate()
        finally:
            telemetry.reset_enabled()
        assert sink.records == []
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}, "timers": {}}
