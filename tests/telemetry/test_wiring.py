"""Acceptance tests: telemetry wired through the real hot paths.

Trains a tiny detector with a JSON-lines sink attached and asserts the
emitted records against the ground truth the library reports through its
return values (:class:`DetectionResult`, :class:`InferenceStats`) -- the
telemetry stream must agree with the numbers the code computes anyway.
"""

import json

import pytest

from repro import telemetry
from repro.datasets import load
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.telemetry import JsonlSink, MemorySink, MetricsRegistry

TINY = ModelConfig(char_embed_dim=6, value_units=5, num_layers=1,
                   attr_embed_dim=3, attr_units=3, length_dense_units=4,
                   head_units=4)
EPOCHS = 2


def _tiny_detector(seed: int = 0) -> ErrorDetector:
    return ErrorDetector(n_label_tuples=6, model_config=TINY,
                         training_config=TrainingConfig(epochs=EPOCHS),
                         seed=seed)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One instrumented train+evaluate cycle: (result, records, snapshot)."""
    path = tmp_path_factory.mktemp("tele") / "run.jsonl"
    registry = MetricsRegistry()
    sink = JsonlSink(path)
    registry.add_sink(sink)
    pair = load("hospital", n_rows=40, seed=4)
    with telemetry.use_telemetry(registry):
        detector = _tiny_detector()
        detector.fit(pair)
        result = detector.evaluate()
    sink.close()
    records = [json.loads(line)
               for line in path.read_text().strip().splitlines()]
    return result, records, registry.snapshot()


def _of_type(records, record_type):
    return [r for r in records if r.get("type") == record_type]


class TestTrainingRecords:
    def test_one_epoch_record_per_epoch(self, traced_run):
        _, records, snapshot = traced_run
        epochs = _of_type(records, "epoch")
        assert len(epochs) == EPOCHS
        assert [r["epoch"] for r in epochs] == list(range(EPOCHS))
        assert snapshot["counters"]["train.epochs"] == EPOCHS

    def test_epoch_records_carry_plausible_training_signal(self, traced_run):
        _, records, _ = traced_run
        for record in _of_type(records, "epoch"):
            assert record["loss"] > 0.0
            assert record["grad_norm"] is None or record["grad_norm"] >= 0.0
            assert record["n_batches"] >= 1
            assert 0.0 < record["batch_fill"] <= 1.0
            assert 0.0 < record["width_ratio"] <= 1.0
            assert record["wall_s"] > 0.0
            assert 0.0 <= record["backward_s"] <= record["wall_s"]

    def test_loss_gauge_matches_last_epoch_record(self, traced_run):
        _, records, snapshot = traced_run
        last = _of_type(records, "epoch")[-1]
        assert snapshot["gauges"]["train.loss"] == pytest.approx(last["loss"])

    def test_fit_span_encloses_the_epochs(self, traced_run):
        _, records, snapshot = traced_run
        [fit_span] = [r for r in _of_type(records, "span")
                      if r["name"] == "train.fit"]
        assert fit_span["epochs"] == EPOCHS
        epoch_wall = sum(r["wall_s"] for r in _of_type(records, "epoch"))
        assert fit_span["wall_s"] >= epoch_wall
        assert snapshot["timers"]["span.train.fit"]["count"] == 1

    def test_kernel_timers_recorded(self, traced_run):
        _, _, snapshot = traced_run
        timers = snapshot["timers"]
        assert timers["kernel.RNNLevelFunction.forward"]["count"] > 0
        assert timers["kernel.RNNLevelFunction.backward"]["count"] > 0
        assert timers["kernel.DenseSoftmaxBCEFunction.forward"]["count"] > 0


class TestInferenceRecords:
    def test_inference_record_matches_inference_stats(self, traced_run):
        result, records, _ = traced_run
        stats = result.inference
        assert stats is not None
        last = _of_type(records, "inference")[-1]
        assert last == {"type": "inference", **stats.as_dict()}

    def test_counters_match_inference_stats(self, traced_run):
        result, _, snapshot = traced_run
        counters = snapshot["counters"]
        stats = result.inference
        # The evaluation pass is the only prediction in this session.
        assert counters["inference.calls"] == 1
        assert counters["inference.rows"] == stats.n_rows
        assert counters["inference.unique"] == stats.n_unique
        assert counters["inference.cache_hits"] == stats.cache_hits
        assert counters["inference.cache_misses"] == stats.cache_misses
        assert counters["inference.evaluated"] == stats.n_evaluated

    def test_cache_lookup_counters_balance(self, traced_run):
        _, _, snapshot = traced_run
        counters = snapshot["counters"]
        assert counters["cache.lookups"] == \
            counters.get("cache.hits", 0) + counters["cache.misses"]

    def test_forward_latency_histogram_covers_every_chunk(self, traced_run):
        result, _, snapshot = traced_run
        hist = snapshot["histograms"]["inference.forward_seconds"]
        # One observation per representative chunk; batch_size 256 >= the
        # tiny test split, so exactly one chunk was evaluated.
        assert hist["count"] == 1
        assert sum(hist["counts"]) == hist["count"]
        assert hist["min"] > 0.0

    def test_evaluation_record_matches_detection_result(self, traced_run):
        result, records, _ = traced_run
        [record] = _of_type(records, "evaluation")
        assert record["n_cells"] == result.predictions.shape[0]
        assert record["precision"] == pytest.approx(
            round(result.report.precision, 4))
        assert record["recall"] == pytest.approx(
            round(result.report.recall, 4))
        assert record["f1"] == pytest.approx(round(result.report.f1, 4))
        assert record["inference"] == result.inference.as_dict()


class TestDisabledByDefault:
    def test_no_records_and_no_metrics_without_the_flag(self):
        registry = MetricsRegistry()
        sink = MemorySink()
        registry.add_sink(sink)
        telemetry.set_enabled(False)
        try:
            with telemetry.use_registry(registry):
                pair = load("hospital", n_rows=30, seed=4)
                detector = _tiny_detector()
                detector.fit(pair)
                detector.evaluate()
        finally:
            telemetry.reset_enabled()
        assert sink.records == []
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}, "timers": {}}
