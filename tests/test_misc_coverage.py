"""Targeted tests for smaller code paths not covered elsewhere."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.tensor import unbroadcast


class TestTensorEdgeCases:
    def test_max_keepdims(self):
        t = Tensor([[1.0, 5.0], [7.0, 2.0]])
        out = t.max(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_max_tie_splits_gradient(self):
        t = Tensor([[3.0, 3.0]], requires_grad=True)
        t.max(axis=1).backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])

    def test_unbroadcast_removes_leading_dims(self):
        grad = np.ones((4, 2, 3))
        reduced = unbroadcast(grad, (2, 3))
        assert reduced.shape == (2, 3)
        assert (reduced == 4).all()

    def test_clip_boundary_gradient(self):
        t = Tensor([0.0, 0.5, 1.0], requires_grad=True)
        t.clip(0.0, 1.0).sum().backward()
        # Boundary values are inside the closed interval: gradient 1.
        np.testing.assert_array_equal(t.grad, [1.0, 1.0, 1.0])

    def test_reshape_flat(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        (t.reshape(6) ** 2).sum().backward()
        assert t.grad.shape == (2, 3)


class TestCurveRenderEdge:
    def test_empty_curve_renders_placeholder(self):
        from repro.experiments.curves import LearningCurves, render_curve
        curves = LearningCurves(dataset="x", system="S", train=(), test=(),
                                best_epochs=())
        assert render_curve(curves) == "(no curve)"

    def test_final_accuracy_requires_curve(self):
        from repro.errors import ExperimentError
        from repro.experiments.curves import LearningCurves
        curves = LearningCurves(dataset="x", system="S", train=(), test=(),
                                best_epochs=())
        with pytest.raises(ExperimentError):
            curves.final_test_accuracy()


class TestScaleFallback:
    def test_unknown_dataset_gets_default_rows(self, monkeypatch):
        from repro.experiments import current_scale
        monkeypatch.delenv("REPRO_FULL", raising=False)
        scale = current_scale()
        # Unknown names fall back to the 200-row default (but are capped
        # by the registry's paper size, which raises for unknown names).
        with pytest.raises(Exception):
            scale.dataset_rows("not-a-dataset")


class TestAugmentOpEdges:
    def test_duplicate_char_empty(self, rng):
        from repro.baselines.augment import op_duplicate_char
        assert op_duplicate_char("", rng) == ""

    def test_case_flip_no_letters(self, rng):
        from repro.baselines.augment import op_case_flip
        assert op_case_flip("123", rng) == "123"


class TestRepairerBase:
    def test_base_methods_abstract(self):
        from repro.repair import Repairer
        with pytest.raises(NotImplementedError):
            Repairer().fit(None)
        with pytest.raises(NotImplementedError):
            Repairer().suggest(0, "a", "x")


class TestFusedDetectorExplicitKey:
    def test_explicit_key_skips_discovery(self):
        from repro.datasets import load
        from repro.dedup import FusedDetector
        from repro.models import ErrorDetector, ModelConfig, TrainingConfig

        pair = load("flights", n_rows=60, seed=1)
        base = ErrorDetector(
            architecture="tsb", n_label_tuples=6,
            model_config=ModelConfig(char_embed_dim=4, value_units=5,
                                     attr_embed_dim=3, attr_units=3,
                                     length_dense_units=4, head_units=6),
            training_config=TrainingConfig(epochs=2), seed=0)
        fused = FusedDetector(base, key_columns=("flight",))
        fused.fit(pair)
        mask = fused.predict_mask(pair.dirty)
        assert mask.shape == pair.dirty.shape
        assert fused.discovered_key is None  # discovery never ran


class TestStrategyBase:
    def test_detect_abstract(self):
        from repro.baselines import DetectionStrategy
        with pytest.raises(NotImplementedError):
            DetectionStrategy().detect(None)


class TestSamplerBase:
    def test_select_abstract(self, rng):
        from repro.sampling import Sampler
        with pytest.raises(NotImplementedError):
            Sampler().select(1, None, rng)


class TestScheduleBase:
    def test_rate_at_abstract(self):
        from repro.nn.schedules import Schedule
        with pytest.raises(NotImplementedError):
            Schedule(0.1).rate_at(0)
