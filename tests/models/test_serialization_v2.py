"""Detector archive format v2: optimizer state and backward compat.

Version 2 archives carry the optimizer's full update state (RMSprop mean
squares, learning rate, hyperparameters) and the training configuration,
so a loaded detector genuinely resumes training where it stopped.
Version-1 archives (no optimizer section) must keep loading with a fresh
paper-default RMSprop.
"""

import json

import numpy as np
import pytest

from repro.datasets import load
from repro.errors import DataError
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.models.serialization import load_detector, save_detector
from repro.nn import RMSprop

TINY = ModelConfig(char_embed_dim=6, value_units=8, attr_embed_dim=3,
                   attr_units=3, length_dense_units=6, head_units=8)


@pytest.fixture(scope="module")
def fitted():
    pair = load("hospital", n_rows=50, seed=2)
    detector = ErrorDetector(architecture="etsb", n_label_tuples=8,
                             model_config=TINY,
                             training_config=TrainingConfig(epochs=3), seed=0)
    detector.fit(pair)
    return detector


def archive_meta(path):
    with np.load(path, allow_pickle=False) as archive:
        return json.loads(str(archive["meta"]))


class TestFormatV2:
    def test_archive_declares_v2_with_optimizer(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(fitted, path)
        meta = archive_meta(path)
        assert meta["format_version"] == 2
        assert meta["optimizer"]["type"] == "RMSprop"
        assert meta["optimizer"]["slots"] == {
            "mean_square": len(fitted.trainer.optimizer.parameters)}
        assert meta["training_config"]["epochs"] == 3

    def test_optimizer_state_round_trips(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(fitted, path)
        loaded = load_detector(path)
        original = fitted.trainer.optimizer
        restored = loaded.trainer.optimizer
        assert isinstance(restored, RMSprop)
        assert restored.learning_rate == original.learning_rate
        assert restored.rho == original.rho
        assert restored.epsilon == original.epsilon
        for a, b in zip(original._mean_square, restored._mean_square):
            assert a.tobytes() == b.tobytes()

    def test_training_config_round_trips(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(fitted, path)
        loaded = load_detector(path)
        assert loaded.training_config == fitted.training_config

    def test_resumed_training_matches_nonstop(self, tmp_path):
        """Save/load mid-training continues the same weight trajectory.

        The moving averages are part of the update rule: without them a
        'resumed' RMSprop recomputes different steps.  With format v2
        the restored trainer's next epochs match continuing in place.
        """
        pair = load("hospital", n_rows=40, seed=4)
        detector = ErrorDetector(architecture="etsb", n_label_tuples=6,
                                 model_config=TINY,
                                 training_config=TrainingConfig(epochs=2),
                                 seed=0)
        detector.fit(pair)
        path = tmp_path / "model.npz"
        save_detector(detector, path)
        loaded = load_detector(path)

        split = detector.split
        feats, labels = split.train.features, split.train.labels
        rng_a = np.random.default_rng(99)
        rng_b = np.random.default_rng(99)
        detector.trainer.rng = rng_a
        loaded.trainer.rng = rng_b
        detector.trainer.fit(feats, labels, epochs=1, batch_size=16)
        loaded.trainer.fit(feats, labels, epochs=1, batch_size=16)
        for key, value in detector.model.state_dict().items():
            assert value.tobytes() == loaded.model.state_dict()[key].tobytes()


class TestBackwardCompatV1:
    def _downgrade(self, src, dest):
        """Rewrite a v2 archive as the v1 format (no optimizer section)."""
        with np.load(src, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            arrays = {name: archive[name] for name in archive.files
                      if name.startswith("state:")}
        meta["format_version"] = 1
        meta.pop("optimizer", None)
        meta.pop("training_config", None)
        np.savez(dest.with_suffix(""),
                 meta=np.asarray(json.dumps(meta)), **arrays)

    def test_v1_archive_loads_with_fresh_rmsprop(self, fitted, tmp_path):
        v2 = tmp_path / "v2.npz"
        save_detector(fitted, v2)
        v1 = tmp_path / "v1.npz"
        self._downgrade(v2, v1)
        loaded = load_detector(v1)
        optimizer = loaded.trainer.optimizer
        assert isinstance(optimizer, RMSprop)
        for mean_square in optimizer._mean_square:
            assert not mean_square.any()  # zeroed, as v1 always behaved

    def test_v1_predictions_unchanged(self, fitted, tmp_path):
        v2 = tmp_path / "v2.npz"
        save_detector(fitted, v2)
        v1 = tmp_path / "v1.npz"
        self._downgrade(v2, v1)
        features = fitted.split.test.features
        np.testing.assert_array_equal(load_detector(v1).predict(features),
                                      load_detector(v2).predict(features))

    def test_unknown_version_rejected(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(fitted, path)
        meta = archive_meta(path)
        meta["format_version"] = 99
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files
                      if name != "meta"}
        np.savez(path.with_suffix(""),
                 meta=np.asarray(json.dumps(meta)), **arrays)
        with pytest.raises(DataError, match="version"):
            load_detector(path)

    def test_unknown_optimizer_rejected(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(fitted, path)
        meta = archive_meta(path)
        meta["optimizer"]["type"] = "Adagrad"
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files
                      if name != "meta"}
        np.savez(path.with_suffix(""),
                 meta=np.asarray(json.dumps(meta)), **arrays)
        with pytest.raises(DataError, match="Adagrad"):
            load_detector(path)
