"""Tests for the end-to-end ErrorDetector API."""

import numpy as np
import pytest

from repro.datasets import load
from repro.errors import ConfigurationError, NotFittedError
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.sampling import RandomSet

TINY_MODEL = ModelConfig(char_embed_dim=6, value_units=8, num_layers=2,
                         attr_embed_dim=3, attr_units=3,
                         length_dense_units=6, head_units=8)
FAST_TRAINING = TrainingConfig(epochs=6)


def make_detector(**overrides) -> ErrorDetector:
    defaults = dict(architecture="etsb", n_label_tuples=8,
                    model_config=TINY_MODEL, training_config=FAST_TRAINING,
                    seed=0)
    defaults.update(overrides)
    return ErrorDetector(**defaults)


@pytest.fixture(scope="module")
def pair():
    return load("hospital", n_rows=60, seed=2)


@pytest.fixture(scope="module")
def fitted(pair):
    return make_detector().fit(pair)


class TestFit:
    def test_fit_populates_state(self, fitted):
        assert fitted.model is not None
        assert fitted.split is not None
        assert fitted.checkpoint is not None
        assert fitted.checkpoint.best_epoch is not None

    def test_train_test_sizes(self, fitted, pair):
        split = fitted.split
        assert split.train_size == 8 * pair.n_attributes
        assert split.test_size == (60 - 8) * pair.n_attributes

    def test_checkpoint_restored_best(self, fitted):
        history = fitted.trainer.history
        assert fitted.checkpoint.best_value == min(history.series("loss"))

    def test_reproducible_given_seed(self, pair):
        a = make_detector(seed=5).fit(pair).evaluate()
        b = make_detector(seed=5).fit(pair).evaluate()
        np.testing.assert_array_equal(a.predictions, b.predictions)

    def test_custom_sampler_used(self, pair):
        detector = make_detector(sampler=RandomSet())
        detector.fit(pair)
        assert len(detector.split.train_tuple_ids) == 8

    def test_invalid_architecture_rejected(self):
        with pytest.raises(ConfigurationError):
            ErrorDetector(architecture="gru")


class TestEvaluate:
    def test_report_fields(self, fitted):
        result = fitted.evaluate()
        assert 0.0 <= result.report.precision <= 1.0
        assert 0.0 <= result.report.recall <= 1.0
        assert 0.0 <= result.report.f1 <= 1.0

    def test_predictions_parallel_to_test_cells(self, fitted):
        result = fitted.evaluate()
        assert result.predictions.shape[0] == fitted.split.test_size
        assert len(result.attribute_names) == fitted.split.test_size

    def test_errors_listing(self, fitted):
        result = fitted.evaluate()
        for tid, attr in result.errors():
            assert attr in fitted.prepared.attributes
            assert tid not in fitted.split.train_tuple_ids

    def test_predict_table_covers_all_cells(self, fitted, pair):
        cells = fitted.predict_table()
        assert all(attr in fitted.prepared.attributes for _, attr in cells)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            make_detector().evaluate()
        with pytest.raises(NotFittedError):
            make_detector().predict({"values": np.zeros((1, 4), dtype=int)})


class TestFitWithLabels:
    def test_interactive_labelling_flow(self, pair):
        """label_fn plays the human: labels from the ground truth."""
        mask = np.array(pair.error_mask())

        calls = []

        def label_fn(tuple_id, row):
            calls.append(tuple_id)
            assert set(row) == set(pair.dirty.column_names)
            return mask[tuple_id].astype(int).tolist()

        detector = make_detector()
        detector.fit_with_labels(pair.dirty, label_fn)
        assert len(calls) == 8
        assert detector.split.train_size == 8 * pair.n_attributes
        # Training labels must equal the user-provided ones.
        train = detector.split.train
        for i in range(train.n_cells):
            tid = int(train.tuple_ids[i])
            attr = train.attribute_names[i]
            col = pair.dirty.column_names.index(attr)
            assert train.labels[i] == int(mask[tid, col])

    def test_wrong_label_count_rejected(self, pair):
        detector = make_detector()
        with pytest.raises(ConfigurationError, match="labels"):
            detector.fit_with_labels(pair.dirty, lambda tid, row: [0])

    def test_non_binary_labels_rejected(self, pair):
        detector = make_detector()
        with pytest.raises(ConfigurationError, match="0 or 1"):
            detector.fit_with_labels(
                pair.dirty,
                lambda tid, row: [2] * pair.n_attributes)


class TestLearning:
    def test_learns_hospital_errors(self):
        """With real settings the model must beat a trivial baseline."""
        pair = load("hospital", n_rows=80, seed=7)
        detector = ErrorDetector(
            architecture="etsb", n_label_tuples=15,
            model_config=ModelConfig(char_embed_dim=16, value_units=24,
                                     attr_embed_dim=4, attr_units=4,
                                     length_dense_units=16, head_units=16),
            training_config=TrainingConfig(epochs=50), seed=1)
        detector.fit(pair)
        report = detector.evaluate().report
        assert report.f1 > 0.5


class TestDedupInference:
    def test_evaluate_reports_inference_stats(self, fitted):
        result = fitted.evaluate()
        stats = result.inference
        assert stats is not None
        assert stats.n_rows == fitted.split.test_size
        assert 0 < stats.n_unique <= stats.n_rows
        assert stats.unique_ratio == stats.n_unique / stats.n_rows

    def test_repeated_evaluate_is_served_from_cache(self, fitted):
        first = fitted.evaluate()
        second = fitted.evaluate()
        np.testing.assert_array_equal(first.predictions, second.predictions)
        assert second.inference.cache_hits == second.inference.n_unique
        assert second.inference.n_evaluated == 0

    def test_dedup_matches_naive_path(self, fitted):
        memoized = fitted.evaluate()
        fitted.deduplicate = False
        try:
            naive = fitted.evaluate()
        finally:
            fitted.deduplicate = True
        np.testing.assert_array_equal(memoized.predictions, naive.predictions)
        assert naive.inference is None

    def test_cache_entries_keyed_to_current_weights(self, fitted):
        fitted.evaluate()
        assert len(fitted.prediction_cache) > 0
        version = fitted.model.weights_version
        assert fitted.prediction_cache.version == version
