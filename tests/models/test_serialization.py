"""Tests for detector serialization and ad-hoc value encoding."""

import numpy as np
import pytest

from repro.datasets import load
from repro.errors import DataError, NotFittedError
from repro.models import ErrorDetector, ModelConfig, TrainingConfig
from repro.models.serialization import (
    encode_values_for,
    load_detector,
    save_detector,
)

TINY = ModelConfig(char_embed_dim=6, value_units=8, attr_embed_dim=3,
                   attr_units=3, length_dense_units=6, head_units=8)


@pytest.fixture(scope="module")
def fitted():
    pair = load("hospital", n_rows=50, seed=2)
    detector = ErrorDetector(architecture="etsb", n_label_tuples=8,
                             model_config=TINY,
                             training_config=TrainingConfig(epochs=3), seed=0)
    detector.fit(pair)
    return detector


class TestRoundTrip:
    def test_identical_predictions(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(fitted, path)
        loaded = load_detector(path)
        before = fitted.predict(fitted.split.test.features)
        after = loaded.predict(fitted.split.test.features)
        np.testing.assert_array_equal(before, after)

    def test_metadata_restored(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(fitted, path)
        loaded = load_detector(path)
        assert loaded.architecture == "etsb"
        assert loaded.prepared.attributes == fitted.prepared.attributes
        assert loaded.prepared.max_length == fitted.prepared.max_length
        assert (loaded.prepared.char_index.n_chars
                == fitted.prepared.char_index.n_chars)

    def test_char_indices_preserved(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(fitted, path)
        loaded = load_detector(path)
        original = fitted.prepared.char_index
        restored = loaded.prepared.char_index
        for i in range(1, original.n_chars + 1):
            assert restored.char_of(i) == original.char_of(i)

    def test_tsb_round_trip(self, tmp_path):
        pair = load("beers", n_rows=40, seed=2)
        detector = ErrorDetector(architecture="tsb", n_label_tuples=6,
                                 model_config=TINY,
                                 training_config=TrainingConfig(epochs=2),
                                 seed=0)
        detector.fit(pair)
        path = tmp_path / "tsb.npz"
        save_detector(detector, path)
        loaded = load_detector(path)
        np.testing.assert_array_equal(
            detector.predict(detector.split.test.features),
            loaded.predict(detector.split.test.features))

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_detector(ErrorDetector(), tmp_path / "x.npz")

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(DataError, match="not a repro detector"):
            load_detector(path)


class TestEncodeValuesFor:
    def test_feature_shapes(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(fitted, path)
        loaded = load_detector(path)
        features = encode_values_for(loaded, ["abc", "yes"],
                                     ["city", "emergency_service"])
        n, length = features["values"].shape
        assert n == 2
        assert length == loaded.prepared.max_length

    def test_unknown_characters_skipped(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(fitted, path)
        loaded = load_detector(path)
        features = encode_values_for(loaded, ["☃☃"], ["city"])
        assert (features["values"] == 0).all()  # all skipped -> padding

    def test_overlong_value_truncated(self, fitted):
        features = encode_values_for(fitted, ["x" * 10_000], ["city"])
        assert features["values"].shape[1] == fitted.prepared.max_length
        assert features["length_norm"][0, 0] == 1.0

    def test_length_mismatch_rejected(self, fitted):
        with pytest.raises(DataError):
            encode_values_for(fitted, ["a", "b"], ["city"])
