"""Tests for the TSB-RNN / ETSB-RNN architectures and configs."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import ETSBRNN, ModelConfig, TrainingConfig, TSBRNN, build_model
from repro.nn.losses import one_hot
from repro.nn import categorical_cross_entropy


@pytest.fixture
def config():
    # Small widths keep the gradient-flow tests fast.
    return ModelConfig(char_embed_dim=4, value_units=5, num_layers=2,
                       attr_embed_dim=3, attr_units=3,
                       length_dense_units=4, head_units=6)


@pytest.fixture
def features(rng):
    return {
        "values": rng.integers(0, 8, size=(6, 10)),
        "attributes": rng.integers(1, 4, size=6),
        "length_norm": rng.uniform(0, 1, size=(6, 1)),
    }


class TestModelConfig:
    def test_defaults_match_paper(self):
        config = ModelConfig()
        assert config.value_units == 64
        assert config.num_layers == 2
        assert config.attr_units == 8
        assert config.length_dense_units == 64
        assert config.head_units == 32

    def test_invalid_widths_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(value_units=0)

    def test_training_defaults_match_paper(self):
        config = TrainingConfig()
        assert config.epochs == 120
        assert config.batch_fraction == 0.25

    def test_batch_size_quarter_of_trainset(self):
        assert TrainingConfig().batch_size(220) == 55  # the Beers example

    def test_batch_size_at_least_one(self):
        assert TrainingConfig().batch_size(2) == 1

    def test_training_validation(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(epochs=0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(batch_fraction=0.0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(learning_rate=-1)


class TestTSBRNN:
    def test_output_is_distribution(self, rng, config, features):
        model = TSBRNN(9, config, rng)
        out = model(features)
        assert out.shape == (6, 2)
        np.testing.assert_allclose(out.numpy().sum(axis=1), 1.0)

    def test_ignores_extra_features(self, rng, config, features):
        model = TSBRNN(9, config, rng)
        only_values = {"values": features["values"]}
        model.eval()
        np.testing.assert_allclose(model(features).numpy(),
                                   model(only_values).numpy())

    def test_missing_values_feature_rejected(self, rng, config):
        with pytest.raises(ConfigurationError):
            TSBRNN(9, config, rng)({"attributes": np.zeros(2, dtype=int)})

    def test_fully_padded_row_handled(self, rng, config):
        """An empty cell value (all pad indices) must still classify."""
        model = TSBRNN(9, config, rng)
        out = model({"values": np.zeros((2, 10), dtype=np.int64)})
        assert np.isfinite(out.numpy()).all()

    def test_empty_and_nonempty_get_different_outputs(self, rng, config):
        model = TSBRNN(9, config, rng)
        model.eval()
        values = np.zeros((2, 10), dtype=np.int64)
        values[1, :3] = [1, 2, 3]
        out = model({"values": values}).numpy()
        assert not np.allclose(out[0], out[1])

    def test_trainable_end_to_end(self, rng, config, features):
        model = TSBRNN(9, config, rng)
        labels = np.array([0, 1, 0, 1, 0, 1])
        loss = categorical_cross_entropy(model(features), one_hot(labels, 2))
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)


class TestETSBRNN:
    def test_output_is_distribution(self, rng, config, features):
        model = ETSBRNN(9, 5, config, rng)
        out = model(features)
        assert out.shape == (6, 2)
        np.testing.assert_allclose(out.numpy().sum(axis=1), 1.0)

    def test_requires_all_three_inputs(self, rng, config, features):
        model = ETSBRNN(9, 5, config, rng)
        for missing in ("values", "attributes", "length_norm"):
            partial = {k: v for k, v in features.items() if k != missing}
            with pytest.raises(ConfigurationError, match=missing):
                model(partial)

    def test_attribute_changes_output(self, rng, config, features):
        """The enrichment must actually flow into the prediction."""
        model = ETSBRNN(9, 5, config, rng)
        model.eval()
        a = model(features).numpy()
        swapped = dict(features)
        swapped["attributes"] = (features["attributes"] % 4) + 1
        b = model(swapped).numpy()
        assert not np.allclose(a, b)

    def test_length_changes_output(self, rng, config, features):
        model = ETSBRNN(9, 5, config, rng)
        model.eval()
        a = model(features).numpy()
        changed = dict(features)
        changed["length_norm"] = features["length_norm"] * 0.1
        assert not np.allclose(a, model(changed).numpy())

    def test_has_more_parameters_than_tsb(self, rng, config):
        tsb = TSBRNN(9, config, np.random.default_rng(0))
        etsb = ETSBRNN(9, 5, config, np.random.default_rng(0))
        assert etsb.n_parameters() > tsb.n_parameters()

    def test_trainable_end_to_end(self, rng, config, features):
        model = ETSBRNN(9, 5, config, rng)
        labels = np.array([0, 1, 0, 1, 0, 1])
        loss = categorical_cross_entropy(model(features), one_hot(labels, 2))
        loss.backward()
        assert all(p.grad is not None for p in model.parameters())


class TestBuildModel:
    def test_builds_both(self, rng, config, paper_example):
        from repro.dataprep import prepare
        dirty, clean = paper_example
        prepared = prepare(dirty, clean)
        tsb = build_model("tsb", prepared, config, rng)
        etsb = build_model("etsb", prepared, config, rng)
        assert isinstance(tsb, TSBRNN)
        assert isinstance(etsb, ETSBRNN)

    def test_unknown_architecture_rejected(self, rng, config, paper_example):
        from repro.dataprep import prepare
        dirty, clean = paper_example
        with pytest.raises(ConfigurationError):
            build_model("lstm", prepare(dirty, clean), config, rng)
