"""Tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.report import _SECTIONS, generate_report


class TestGenerateReport:
    def test_includes_present_results(self, tmp_path):
        (tmp_path / "table2_datasets.txt").write_text("THE TABLE 2 BODY")
        report = generate_report(tmp_path)
        assert "THE TABLE 2 BODY" in report
        assert "Table 2" in report

    def test_flags_missing_results(self, tmp_path):
        report = generate_report(tmp_path)
        assert "benchmark not run yet" in report
        assert "Missing result files" in report

    def test_writes_output_file(self, tmp_path):
        out = tmp_path / "EXPERIMENTS.md"
        generate_report(tmp_path, out)
        assert out.exists()
        assert out.read_text().startswith("# EXPERIMENTS")

    def test_every_section_has_heading_and_context(self, tmp_path):
        report = generate_report(tmp_path)
        for _, heading, context in _SECTIONS:
            assert heading in report
            assert context.split("\n")[0][:30] in report

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            generate_report(tmp_path / "nope")

    def test_sections_cover_every_table_and_figure(self):
        headings = [heading for _, heading, __ in _SECTIONS]
        for required in ("Table 2", "Table 3", "Table 4", "Table 5",
                         "Figure 6", "Figure 7"):
            assert any(required in h for h in headings), required
