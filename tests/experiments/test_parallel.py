"""Tests for the process-pool experiment runner.

The contract: parallel execution is a scheduling detail.  Every task
seeds itself from its arguments (``base_seed + run_index``), so the
aggregated :class:`ExperimentResult` is identical to the serial one in
everything except wall-clock timings.
"""

import numpy as np
import pytest

from repro.datasets import load
from repro.errors import ExperimentError
from repro.experiments import run_experiment, run_experiment_matrix
from repro.models import ModelConfig

TINY = ModelConfig(char_embed_dim=6, value_units=8, attr_embed_dim=3,
                   attr_units=3, length_dense_units=6, head_units=8)

SETTINGS = dict(n_runs=2, n_label_tuples=6, epochs=2, model_config=TINY)


@pytest.fixture(scope="module")
def pair():
    return load("hospital", n_rows=40, seed=4)


def assert_same_runs(a, b):
    """Equal up to wall-clock seconds (the only nondeterministic field)."""
    assert len(a) == len(b)
    for run_a, run_b in zip(a, b):
        assert run_a.seed == run_b.seed
        assert run_a.report == run_b.report
        assert run_a.best_epoch == run_b.best_epoch
        assert run_a.train_accuracy_curve == run_b.train_accuracy_curve
        assert run_a.test_accuracy_curve == run_b.test_accuracy_curve


class TestParallelRunner:
    def test_parallel_reproduces_serial(self, pair):
        serial = run_experiment(pair, **SETTINGS)
        parallel = run_experiment(pair, **SETTINGS, n_workers=2)
        assert parallel.dataset == serial.dataset
        assert parallel.system == serial.system
        assert_same_runs(serial.runs, parallel.runs)
        row_s, row_p = serial.as_row(), parallel.as_row()
        for key in ("P", "P_sd", "R", "R_sd", "F1", "F1_sd"):
            assert row_s[key] == row_p[key]

    def test_single_worker_is_serial_path(self, pair):
        serial = run_experiment(pair, **SETTINGS)
        one = run_experiment(pair, **SETTINGS, n_workers=1)
        assert_same_runs(serial.runs, one.runs)

    def test_invalid_workers_rejected(self, pair):
        with pytest.raises(ExperimentError):
            run_experiment(pair, **SETTINGS, n_workers=0)

    def test_seeds_follow_base_seed(self, pair):
        result = run_experiment(pair, **SETTINGS, base_seed=30, n_workers=2)
        assert [run.seed for run in result.runs] == [30, 31]


class TestExperimentMatrix:
    @pytest.fixture(scope="class")
    def pairs(self, pair):
        return [pair, load("beers", n_rows=40, seed=4)]

    def test_matrix_matches_per_dataset_runs(self, pairs):
        matrix = run_experiment_matrix(pairs, **SETTINGS)
        assert list(matrix) == [p.name for p in pairs]
        for p in pairs:
            single = run_experiment(p, **SETTINGS)
            assert matrix[p.name].dataset == single.dataset
            assert matrix[p.name].system == single.system
            assert_same_runs(single.runs, matrix[p.name].runs)

    def test_parallel_matrix_reproduces_serial(self, pairs):
        serial = run_experiment_matrix(pairs, **SETTINGS)
        parallel = run_experiment_matrix(pairs, **SETTINGS, n_workers=2)
        assert list(serial) == list(parallel)
        for name in serial:
            assert_same_runs(serial[name].runs, parallel[name].runs)

    def test_duplicate_dataset_names_rejected(self, pair):
        with pytest.raises(ExperimentError):
            run_experiment_matrix([pair, pair], **SETTINGS)

    def test_invalid_n_runs_rejected(self, pairs):
        with pytest.raises(ExperimentError):
            run_experiment_matrix(pairs, n_runs=0)

    def test_training_config_override(self, pair):
        """A full TrainingConfig (e.g. bucketed) flows through the matrix."""
        from repro.models import TrainingConfig
        config = TrainingConfig(epochs=2, bucket_batches=True,
                                n_length_buckets=3)
        matrix = run_experiment_matrix([pair], n_runs=1, n_label_tuples=6,
                                       model_config=TINY,
                                       training_config=config, n_workers=2)
        result = matrix[pair.name]
        assert len(result.runs) == 1
        assert 0.0 <= result.f1.mean <= 1.0
