"""Tests for the Section 5.5 error-analysis utilities and the
augmentation baseline runner."""

import numpy as np
import pytest

from repro.datasets import load
from repro.errors import ExperimentError
from repro.experiments import (
    attribute_breakdown,
    error_type_recall,
    false_negatives,
    hardest_attributes,
    render_breakdown,
    run_augmentation_baseline,
)
from repro.models import ErrorDetector, ModelConfig, TrainingConfig

TINY = ModelConfig(char_embed_dim=6, value_units=8, attr_embed_dim=3,
                   attr_units=3, length_dense_units=6, head_units=8)


@pytest.fixture(scope="module")
def fitted_pair():
    pair = load("beers", n_rows=60, seed=1)
    detector = ErrorDetector(architecture="etsb", n_label_tuples=10,
                             model_config=TINY,
                             training_config=TrainingConfig(epochs=5), seed=0)
    detector.fit(pair)
    return pair, detector, detector.evaluate()


class TestAttributeBreakdown:
    def test_one_entry_per_attribute(self, fitted_pair):
        pair, detector, result = fitted_pair
        breakdowns = attribute_breakdown(result, detector.split.test.labels)
        assert len(breakdowns) == pair.n_attributes

    def test_cells_sum_to_test_size(self, fitted_pair):
        pair, detector, result = fitted_pair
        breakdowns = attribute_breakdown(result, detector.split.test.labels)
        assert sum(b.n_cells for b in breakdowns) == detector.split.test_size

    def test_errors_sum_to_positive_labels(self, fitted_pair):
        pair, detector, result = fitted_pair
        breakdowns = attribute_breakdown(result, detector.split.test.labels)
        assert sum(b.n_errors for b in breakdowns) == \
            int(detector.split.test.labels.sum())

    def test_shape_mismatch_rejected(self, fitted_pair):
        _, __, result = fitted_pair
        with pytest.raises(ExperimentError):
            attribute_breakdown(result, np.zeros(3))

    def test_hardest_sorted_ascending(self, fitted_pair):
        pair, detector, result = fitted_pair
        breakdowns = attribute_breakdown(result, detector.split.test.labels)
        hardest = hardest_attributes(breakdowns)
        f1s = [b.report.f1 for b in hardest]
        assert f1s == sorted(f1s)
        assert all(b.n_errors >= 1 for b in hardest)

    def test_render(self, fitted_pair):
        pair, detector, result = fitted_pair
        breakdowns = attribute_breakdown(result, detector.split.test.labels)
        text = render_breakdown(breakdowns)
        assert "attribute" in text
        assert "ounces" in text


class TestErrorTypeRecall:
    def test_totals_match_test_ledger(self, fitted_pair):
        pair, detector, result = fitted_pair
        counts = error_type_recall(pair, result)
        train_ids = set(detector.split.train_tuple_ids)
        expected_total = sum(1 for e in pair.errors if e.row not in train_ids)
        assert sum(total for _, total in counts.values()) == expected_total

    def test_detected_bounded_by_total(self, fitted_pair):
        pair, _, result = fitted_pair
        for detected, total in error_type_recall(pair, result).values():
            assert 0 <= detected <= total

    def test_requires_ledger(self, fitted_pair):
        from repro.datasets.base import DatasetPair
        pair, _, result = fitted_pair
        no_ledger = DatasetPair(name="x", dirty=pair.dirty, clean=pair.clean)
        with pytest.raises(ExperimentError, match="ledger"):
            error_type_recall(no_ledger, result)


class TestFalseNegatives:
    def test_entries_are_real_misses(self, fitted_pair):
        pair, detector, result = fitted_pair
        misses = false_negatives(result, detector.split.test.labels, pair)
        for tuple_id, attribute, dirty, clean in misses:
            assert dirty.lstrip() != clean.lstrip()

    def test_limit_respected(self, fitted_pair):
        pair, detector, result = fitted_pair
        misses = false_negatives(result, detector.split.test.labels, pair,
                                 limit=2)
        assert len(misses) <= 2


class TestAugmentationBaselineRunner:
    def test_runs_and_scores(self):
        pair = load("beers", n_rows=80, seed=1)
        result = run_augmentation_baseline(pair, n_runs=2, n_label_tuples=10)
        assert result.system == "Augment (ours)"
        assert len(result.runs) == 2
        assert 0.0 <= result.f1.mean <= 1.0

    def test_catches_formatting_errors(self):
        """Suffix-style FI errors are easy for the n-gram classifier."""
        pair = load("beers", n_rows=120, seed=1)
        result = run_augmentation_baseline(pair, n_runs=1, n_label_tuples=20)
        assert result.f1.mean > 0.5

    def test_invalid_runs_rejected(self):
        pair = load("beers", n_rows=40, seed=1)
        with pytest.raises(ExperimentError):
            run_augmentation_baseline(pair, n_runs=0)
