"""Tests for the experiment runner, tables, curves and scale resolution."""

import numpy as np
import pytest

from repro.datasets import load
from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentResult,
    collect_curves,
    current_scale,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    run_experiment,
    run_raha_baseline,
)
from repro.experiments.curves import render_curve
from repro.experiments.reference import PAPER_TABLE3, PAPER_TABLE4, PAPER_TABLE5
from repro.experiments.runner import RunResult
from repro.experiments.tables import f1_averages
from repro.metrics import ClassificationReport
from repro.models import ModelConfig

TINY = ModelConfig(char_embed_dim=6, value_units=8, attr_embed_dim=3,
                   attr_units=3, length_dense_units=6, head_units=8)


@pytest.fixture(scope="module")
def pair():
    return load("hospital", n_rows=50, seed=4)


@pytest.fixture(scope="module")
def result(pair):
    return run_experiment(pair, architecture="etsb", n_runs=2,
                          n_label_tuples=6, epochs=4, model_config=TINY,
                          track_curves=True)


def fake_result(system: str, dataset: str, f1s: list[float]) -> ExperimentResult:
    runs = []
    for seed, f1 in enumerate(f1s):
        # Equal precision and recall make F1 exactly tp/100.
        tp = int(round(100 * f1))
        fp = 100 - tp
        report = ClassificationReport.from_predictions(
            [1] * 100 + [0] * 100,
            [1] * tp + [0] * (100 - tp) + [1] * fp + [0] * (100 - fp))
        runs.append(RunResult(seed=seed, report=report, train_seconds=1.0,
                              best_epoch=0))
    return ExperimentResult(dataset=dataset, system=system, runs=tuple(runs))


class TestRunner:
    def test_repeated_runs_recorded(self, result):
        assert len(result.runs) == 2
        assert result.system == "ETSB-RNN"
        assert result.dataset == "hospital"

    def test_seeds_increment(self, result):
        assert [run.seed for run in result.runs] == [0, 1]

    def test_summaries_available(self, result):
        assert 0.0 <= result.f1.mean <= 1.0
        assert result.train_seconds.mean > 0
        assert result.precision.n == 2

    def test_as_row_keys(self, result):
        row = result.as_row()
        assert set(row) == {"P", "P_sd", "R", "R_sd", "F1", "F1_sd",
                            "seconds", "seconds_sd"}

    def test_curves_tracked(self, result):
        for run in result.runs:
            assert len(run.test_accuracy_curve) == 4
            assert len(run.train_accuracy_curve) == 4

    def test_invalid_n_runs(self, pair):
        with pytest.raises(ExperimentError):
            run_experiment(pair, n_runs=0)

    def test_raha_baseline_runs(self, pair):
        result = run_raha_baseline(pair, n_runs=2, n_label_tuples=6)
        assert result.system == "Raha (ours)"
        assert len(result.runs) == 2
        assert 0.0 <= result.f1.mean <= 1.0


class TestCurves:
    def test_collect_curves(self, result):
        curves = collect_curves(result)
        assert len(curves.test) == 4
        assert len(curves.train) == 4
        assert len(curves.best_epochs) == 2
        for point in curves.test:
            assert point.ci_low <= point.mean <= point.ci_high

    def test_series_extraction(self, result):
        curves = collect_curves(result)
        series = curves.as_series("test")
        assert [epoch for epoch, _ in series] == [0, 1, 2, 3]
        assert curves.final_test_accuracy() == series[-1][1]

    def test_untracked_experiment_rejected(self, pair):
        bare = run_experiment(pair, n_runs=1, n_label_tuples=6, epochs=2,
                              model_config=TINY)
        with pytest.raises(ExperimentError):
            collect_curves(bare)

    def test_render_curve_text(self, result):
        text = render_curve(collect_curves(result))
        assert "acc" in text


class TestTables:
    def test_table2(self):
        pairs = [load("hospital", n_rows=40, seed=0),
                 load("beers", n_rows=40, seed=0)]
        table, text = render_table2(pairs)
        assert table.n_rows == 2
        assert "hospital" in text
        assert "Error Rate" in text

    def test_table3_includes_paper_and_measured(self, result):
        table, text = render_table3([result])
        assert "Raha (paper)" in text
        assert "ETSB-RNN (measured)" in text
        assert "hospital/F1" in text

    def test_table3_duplicate_results_rejected(self, result):
        with pytest.raises(ExperimentError):
            render_table3([result, result])

    def test_table4_averages(self):
        results = [
            fake_result("X", "beers", [0.9]),
            fake_result("X", "flights", [0.5]),
            fake_result("X", "hospital", [0.7]),
        ]
        averages = f1_averages(results)["X"]
        assert averages["avg_wo"] == pytest.approx(0.8, abs=0.01)
        assert averages["avg_w"] == pytest.approx(0.7, abs=0.01)

    def test_table4_render(self, result):
        table, text = render_table4([result])
        assert "ETSB-RNN (paper)" in text
        assert "AVG w/o Flights" in text

    def test_table5_render(self, result):
        table, text = render_table5([result])
        assert "hospital" in text
        assert "AVG" in text
        assert "ETSB measured [s]" in text


class TestReferenceNumbers:
    def test_table3_headline_values(self):
        assert PAPER_TABLE3["ETSB-RNN"]["hospital"].f1 == 0.97
        assert PAPER_TABLE3["ETSB-RNN"]["flights"].f1 == 0.74
        assert PAPER_TABLE3["Raha"]["beers"].f1 == 0.99
        assert PAPER_TABLE3["Rotom"]["flights"].f1 is None

    def test_table4_values(self):
        assert PAPER_TABLE4["ETSB-RNN"]["avg_wo"] == 0.91
        assert PAPER_TABLE4["Rotom"]["avg_w"] is None

    def test_table5_values(self):
        assert PAPER_TABLE5["movies"]["etsb_avg"] == 312

    def test_etsb_beats_tsb_everywhere_in_paper(self):
        """The paper's claim: ETSB >= TSB on every dataset."""
        for dataset in PAPER_TABLE3["TSB-RNN"]:
            tsb = PAPER_TABLE3["TSB-RNN"][dataset].f1
            etsb = PAPER_TABLE3["ETSB-RNN"][dataset].f1
            assert etsb >= tsb


class TestScale:
    def test_scaled_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        scale = current_scale()
        assert not scale.full
        assert scale.n_label_tuples == 20
        assert scale.dataset_rows("tax") <= 300

    def test_full_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        scale = current_scale()
        assert scale.full
        assert scale.epochs == 120
        assert scale.n_runs == 10
        assert scale.dataset_rows("tax") == 200_000

    def test_scaled_rows_never_exceed_paper(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        scale = current_scale()
        from repro.datasets import dataset_spec
        for name in ("beers", "flights", "hospital", "movies", "rayyan", "tax"):
            assert scale.dataset_rows(name) <= dataset_spec(name).paper_rows
