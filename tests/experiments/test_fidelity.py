"""Tests for the reproduction-fidelity metrics."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.fidelity import (
    FidelityReport,
    fidelity_report,
    spearman_rho,
)
from tests.experiments.test_harness import fake_result


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman_rho([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman_rho([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_monotone_transform_invariant(self):
        a = [0.1, 0.5, 0.9, 0.3]
        b = [x ** 3 for x in a]
        assert spearman_rho(a, b) == pytest.approx(1.0)

    def test_ties_averaged(self):
        rho = spearman_rho([1, 1, 2], [1, 2, 3])
        assert -1.0 <= rho <= 1.0

    def test_constant_sequence_is_zero(self):
        assert spearman_rho([1, 1, 1], [1, 2, 3]) == 0.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            spearman_rho([1], [1])
        with pytest.raises(ExperimentError):
            spearman_rho([1, 2], [1, 2, 3])


class TestFidelityReport:
    def _results(self, f1s: dict[str, float], system="ETSB-RNN"):
        out = []
        for dataset, f1 in f1s.items():
            result = fake_result(system, dataset, [f1])
            out.append(result)
        return out

    def test_exact_reproduction_zero_gap(self):
        paper_values = {"beers": 0.98, "flights": 0.74, "hospital": 0.97,
                        "movies": 0.88, "rayyan": 0.85, "tax": 0.86}
        report = fidelity_report(self._results(paper_values), "ETSB-RNN")
        assert report.mean_absolute_gap == pytest.approx(0.0, abs=0.01)
        assert report.rank_correlation == pytest.approx(1.0)

    def test_gap_signs(self):
        report = fidelity_report(
            self._results({"beers": 0.88, "flights": 0.84}), "ETSB-RNN")
        assert report.gaps["beers"] == pytest.approx(-0.10, abs=0.01)
        assert report.gaps["flights"] == pytest.approx(0.10, abs=0.01)

    def test_worst_dataset(self):
        report = fidelity_report(
            self._results({"beers": 0.98, "flights": 0.30}), "ETSB-RNN")
        assert report.worst_dataset == "flights"

    def test_render_contains_all_datasets(self):
        report = fidelity_report(
            self._results({"beers": 0.9, "flights": 0.7}), "ETSB-RNN")
        text = report.render()
        assert "beers" in text
        assert "rank correlation" in text

    def test_unknown_system_rejected(self):
        with pytest.raises(ExperimentError):
            fidelity_report([], "GPT-RNN")

    def test_too_few_datasets_rejected(self):
        with pytest.raises(ExperimentError):
            fidelity_report(self._results({"beers": 0.9}), "ETSB-RNN")

    def test_other_systems_ignored(self):
        mixed = (self._results({"beers": 0.9, "flights": 0.7})
                 + self._results({"beers": 0.1}, system="TSB-RNN"))
        report = fidelity_report(mixed, "ETSB-RNN")
        assert set(report.gaps) == {"beers", "flights"}
