"""Tests for classification metrics and run statistics."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.metrics import (
    ClassificationReport,
    accuracy,
    confidence_interval,
    confusion_counts,
    f1_score,
    mean,
    precision,
    recall,
    stdev,
    summarize,
)


class TestConfusion:
    def test_counts(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 1, 0, 1]
        assert confusion_counts(y_true, y_pred) == (2, 1, 1, 1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            confusion_counts([1], [1, 0])

    def test_non_binary_rejected(self):
        with pytest.raises(ExperimentError):
            confusion_counts([2, 0], [1, 0])

    def test_non_1d_rejected(self):
        with pytest.raises(ExperimentError):
            confusion_counts(np.zeros((2, 2)), np.zeros((2, 2)))


class TestMetrics:
    def test_precision(self):
        assert precision([1, 0, 0], [1, 1, 0]) == 0.5

    def test_recall(self):
        assert recall([1, 1, 0], [1, 0, 0]) == 0.5

    def test_f1(self):
        p, r = 0.5, 1.0
        assert f1_score([1, 0], [1, 1]) == pytest.approx(2 * p * r / (p + r))

    def test_accuracy(self):
        assert accuracy([1, 0, 1, 0], [1, 0, 0, 0]) == 0.75

    def test_no_predicted_positives(self):
        assert precision([1, 0], [0, 0]) == 0.0
        assert f1_score([1, 0], [0, 0]) == 0.0

    def test_no_actual_positives(self):
        assert recall([0, 0], [1, 0]) == 0.0

    def test_perfect(self):
        assert f1_score([1, 0, 1], [1, 0, 1]) == 1.0


class TestReport:
    def test_from_predictions(self):
        report = ClassificationReport.from_predictions([1, 1, 0, 0],
                                                       [1, 0, 1, 0])
        assert report.precision == 0.5
        assert report.recall == 0.5
        assert report.f1 == 0.5
        assert report.accuracy == 0.5
        assert (report.tp, report.fp, report.fn, report.tn) == (1, 1, 1, 1)

    def test_as_row(self):
        report = ClassificationReport.from_predictions([1], [1])
        assert report.as_row() == {"P": 1.0, "R": 1.0, "F1": 1.0}

    def test_str_format(self):
        text = str(ClassificationReport.from_predictions([1, 0], [1, 0]))
        assert "F1=1.00" in text


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ExperimentError):
            mean([])

    def test_stdev_sample(self):
        assert stdev([2.0, 4.0]) == pytest.approx(np.std([2, 4], ddof=1))

    def test_stdev_single_value(self):
        assert stdev([5.0]) == 0.0

    def test_confidence_interval_contains_mean(self):
        values = [0.8, 0.9, 0.85, 0.95, 0.9]
        low, high = confidence_interval(values)
        assert low < mean(values) < high

    def test_confidence_interval_matches_t_table(self):
        # n=10 -> t(9) = 2.262
        values = list(np.linspace(0, 1, 10))
        low, high = confidence_interval(values)
        half = 2.262 * stdev(values) / np.sqrt(10)
        assert high - mean(values) == pytest.approx(half)

    def test_single_value_interval_degenerate(self):
        assert confidence_interval([0.5]) == (0.5, 0.5)

    def test_unsupported_level_rejected(self):
        with pytest.raises(ExperimentError):
            confidence_interval([1.0, 2.0], level=0.99)

    def test_summarize(self):
        summary = summarize([0.9, 0.8, 1.0])
        assert summary.mean == pytest.approx(0.9)
        assert summary.n == 3
        assert summary.ci_low < 0.9 < summary.ci_high
        assert "±" in str(summary)

    def test_large_sample_uses_normal(self):
        values = list(np.linspace(0, 1, 50))
        low, high = confidence_interval(values)
        half = 1.96 * stdev(values) / np.sqrt(50)
        assert high - mean(values) == pytest.approx(half)
