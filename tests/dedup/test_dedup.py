"""Tests for duplicate-record key discovery, groups and fusion."""

import numpy as np
import pytest

from repro.datasets import load
from repro.dedup import (
    DuplicateGroups,
    disagreement_mask,
    fuse_predictions,
    identify_record_key,
)
from repro.dedup.keys import score_record_key
from repro.errors import DataError
from repro.table import Table


@pytest.fixture
def flights_like() -> Table:
    """Three flights x two sources; one disagreeing departure time."""
    return Table({
        "src": ["a", "b", "a", "b", "a", "b"],
        "flight": ["UA-1", "UA-1", "DL-2", "DL-2", "AA-3", "AA-3"],
        "dep": ["9:00", "9:20", "8:30", "8:30", "7:15", "7:15"],
        "arr": ["11:00", "11:00", "10:30", "10:30", "9:45", "9:45"],
    })


class TestScoreRecordKey:
    def test_duplication_fraction(self, flights_like):
        candidate = score_record_key(flights_like, ("flight",),
                                     exclude=frozenset({"src"}))
        assert candidate.duplication == 1.0

    def test_agreement_reflects_disagreements(self, flights_like):
        candidate = score_record_key(flights_like, ("flight",),
                                     exclude=frozenset({"src"}))
        # dep disagrees in one of three groups: agreement < 1.
        assert 0.5 < candidate.agreement < 1.0

    def test_unique_key_scores_zero_duplication(self, flights_like):
        with_id = flights_like.with_column("id", range(6))
        candidate = score_record_key(with_id, ("id",))
        assert candidate.duplication == 0.0


class TestIdentifyRecordKey:
    def test_finds_flight_column(self, flights_like):
        best = identify_record_key(flights_like, exclude=("src",))
        assert best is not None
        assert best.columns == ("flight",)

    def test_on_real_flights_dataset(self):
        pair = load("flights", n_rows=120, seed=1)
        best = identify_record_key(pair.dirty, exclude=("tuple_id", "src"))
        assert best is not None
        assert best.columns == ("flight",)

    def test_no_key_on_unique_table(self):
        table = Table({"a": [str(i) for i in range(20)],
                       "b": [str(i * 2) for i in range(20)]})
        assert identify_record_key(table) is None

    def test_empty_table_rejected(self):
        with pytest.raises(DataError):
            identify_record_key(Table({"a": []}))


class TestDuplicateGroups:
    def test_group_count(self, flights_like):
        groups = DuplicateGroups(flights_like, ("flight",))
        assert len(groups) == 3
        assert groups.n_duplicated_records() == 6

    def test_majority_values_skip_empties(self):
        table = Table({
            "k": ["x", "x", "x"],
            "v": ["", "9:00", "9:00"],
        })
        majorities = DuplicateGroups(table, ("k",)).majority_values()
        assert majorities[("x",)]["v"] == "9:00"

    def test_all_empty_group_has_none_majority(self):
        table = Table({"k": ["x", "x"], "v": ["", ""]})
        majorities = DuplicateGroups(table, ("k",)).majority_values()
        assert majorities[("x",)]["v"] is None

    def test_validation(self, flights_like):
        with pytest.raises(DataError):
            DuplicateGroups(flights_like, ("ghost",))
        with pytest.raises(DataError):
            DuplicateGroups(flights_like, ())


class TestDisagreementMask:
    def test_flags_only_the_minority_cell(self, flights_like):
        mask = disagreement_mask(flights_like, ("flight",))
        dep = flights_like.column_names.index("dep")
        # With a 1-1 tie the dict-max picks the first value as majority;
        # exactly one of the two UA-1 dep cells is flagged.
        assert mask[:, dep].sum() == 1
        assert mask[0, dep] or mask[1, dep]

    def test_agreeing_cells_unflagged(self, flights_like):
        mask = disagreement_mask(flights_like, ("flight",))
        arr = flights_like.column_names.index("arr")
        assert not mask[:, arr].any()

    def test_key_columns_never_flagged(self, flights_like):
        mask = disagreement_mask(flights_like, ("flight",))
        flight = flights_like.column_names.index("flight")
        assert not mask[:, flight].any()

    def test_catches_real_flights_errors(self):
        pair = load("flights", n_rows=120, seed=1)
        mask = disagreement_mask(pair.dirty, ("flight",))
        truth = np.array(pair.error_mask())
        from repro.metrics import recall
        # Cross-record disagreement recovers most injected time errors.
        assert recall(truth.astype(int).reshape(-1),
                      mask.astype(int).reshape(-1)) > 0.5


class TestFusePredictions:
    def test_union(self):
        a = np.array([[True, False], [False, False]])
        b = np.array([[False, False], [True, False]])
        assert fuse_predictions(a, b).sum() == 2

    def test_intersection(self):
        a = np.array([[True, True]])
        b = np.array([[True, False]])
        assert fuse_predictions(a, b, mode="intersection").sum() == 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            fuse_predictions(np.zeros((2, 2), bool), np.zeros((2, 3), bool))

    def test_unknown_mode_rejected(self):
        with pytest.raises(DataError):
            fuse_predictions(np.zeros((1, 1), bool),
                             np.zeros((1, 1), bool), mode="xor")


class TestFusedDetector:
    def test_fusion_improves_flights_recall(self):
        """The §5.7 claim as an executable statement: fusing the BiRNN
        with duplicate-record disagreements raises recall on Flights."""
        from repro.dedup import FusedDetector
        from repro.metrics import recall
        from repro.models import ErrorDetector, ModelConfig, TrainingConfig

        pair = load("flights", n_rows=120, seed=1)
        base = ErrorDetector(
            architecture="etsb", n_label_tuples=12,
            model_config=ModelConfig(char_embed_dim=8, value_units=10,
                                     attr_embed_dim=3, attr_units=3,
                                     length_dense_units=6, head_units=8),
            training_config=TrainingConfig(epochs=15), seed=0)
        fused = FusedDetector(base, exclude=("tuple_id", "src"))
        fused.fit(pair)

        truth = np.array(pair.error_mask()).astype(int)
        base_mask = fused.predict_mask(pair.dirty)  # fused (union)
        assert fused.discovered_key == ("flight",)

        model_only = np.zeros(pair.dirty.shape, dtype=bool)
        positions = {a: j for j, a in enumerate(pair.dirty.column_names)}
        for tid, attr in base.predict_table():
            model_only[tid, positions[attr]] = True

        fused_recall = recall(truth.reshape(-1),
                              base_mask.astype(int).reshape(-1))
        model_recall = recall(truth.reshape(-1),
                              model_only.astype(int).reshape(-1))
        assert fused_recall >= model_recall

    def test_degrades_gracefully_without_key(self):
        from repro.dedup import FusedDetector
        from repro.models import ErrorDetector, ModelConfig, TrainingConfig

        pair = load("rayyan", n_rows=50, seed=1)  # no duplicate records
        base = ErrorDetector(
            architecture="tsb", n_label_tuples=8,
            model_config=ModelConfig(char_embed_dim=6, value_units=6,
                                     attr_embed_dim=3, attr_units=3,
                                     length_dense_units=4, head_units=6),
            training_config=TrainingConfig(epochs=3), seed=0)
        fused = FusedDetector(base)
        fused.fit(pair)
        mask = fused.predict_mask(pair.dirty)
        assert mask.shape == pair.dirty.shape

    def test_unfitted_raises(self):
        from repro.dedup import FusedDetector
        from repro.errors import NotFittedError
        from repro.models import ErrorDetector

        fused = FusedDetector(ErrorDetector())
        with pytest.raises(NotFittedError):
            fused.predict_mask(Table({"a": ["1"]}))
