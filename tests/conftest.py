"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.table import Table


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def people() -> Table:
    """A small wide table with a missing value and mixed types."""
    return Table({
        "name": ["Ada", "Grace", "Alan", "Edsger"],
        "city": ["Zurich", "Rome", "Paris", "Vienna"],
        "age": ["36", "45", "41", None],
    })


@pytest.fixture
def paper_example() -> tuple[Table, Table]:
    """The dirty/clean pair from Table 1 of the paper."""
    dirty = Table({
        "A": ["21", "45", "30", "12", "26"],
        "Sal": ["80,000", "98000", "92000", "99000", "850"],
        "ZIP": ["8000", "00100", "75000", "BER", "75000"],
        "City": ["NaN", "Romr", "Paris", "Berlin", "Vienna"],
    })
    clean = Table({
        "A": ["21", "45", "30", "42", "26"],
        "Sal": ["80000", "98000", "92000", "99000", "85000"],
        "ZIP": ["8000", "00100", "75000", "10115", "1010"],
        "City": ["Zurich", "Rome", "Paris", "Berlin", "Vienna"],
    })
    return dirty, clean
